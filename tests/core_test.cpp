// Unit tests for the analysis core (src/core): solo runs, rate-delay
// sweeps, fairness metrics, the §6.3 closed forms, equilibrium helpers and
// the adversary search scaffolding.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/misc.hpp"
#include "cc/vegas.hpp"
#include "core/equilibrium.hpp"
#include "core/fairness.hpp"
#include "core/jitter_search.hpp"
#include "core/rate_delay.hpp"
#include "core/rate_range.hpp"
#include "core/solo.hpp"
#include "core/theorem1.hpp"

namespace ccstarve {
namespace {

CcaMaker vegas_maker() {
  return [] { return std::unique_ptr<Cca>(new Vegas()); };
}
CcaMaker const_cwnd_maker(double pkts) {
  return [pkts] { return std::unique_ptr<Cca>(new ConstCwnd(pkts)); };
}

TEST(RunSolo, ReportsDelayRangeAndThroughput) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(20);
  const SoloResult r = run_solo(vegas_maker(), cfg);
  EXPECT_GT(r.throughput.to_mbps(), 9.0);
  EXPECT_GE(r.d_min_s, 0.050);
  EXPECT_LE(r.d_max_s, 0.070);
  EXPECT_LE(r.d_min_s, r.d_max_s);
  EXPECT_FALSE(r.rtt.empty());
  EXPECT_EQ(r.converged_from, TimeNs::seconds(10));
}

TEST(RunSolo, ConvergedRttStartsAtZero) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(5);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(10);
  const SoloResult r = run_solo(vegas_maker(), cfg);
  const TimeSeries win = r.converged_rtt();
  ASSERT_FALSE(win.empty());
  EXPECT_EQ(win.front_time(), TimeNs::zero());
  EXPECT_LE(win.back_time(), TimeNs::seconds(5));
}

TEST(RunSolo, UnderutilizingCcaReported) {
  // ConstCwnd(10) on a fat link: utilization must come out tiny (this is
  // the paper's "silly CCA" that avoids starvation by being inefficient).
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(100);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(10);
  const SoloResult r = run_solo(const_cwnd_maker(10), cfg);
  EXPECT_LT(r.utilization(), 0.05);
}

TEST(ConvergenceTime, DetectsEntryIntoBand) {
  TimeSeries rtt;
  // Ramp 100 -> 120 ms over 10 samples, then hold at 120 +- 1.
  for (int i = 0; i <= 10; ++i) {
    rtt.add(TimeNs::seconds(i), 0.100 + 0.002 * i);
  }
  for (int i = 11; i <= 30; ++i) {
    rtt.add(TimeNs::seconds(i), 0.120 + (i % 2 ? 0.001 : -0.001));
  }
  const auto t = convergence_time(rtt, 0.119, 0.121, 0.0005);
  ASSERT_TRUE(t.has_value());
  // The last out-of-band sample is the ramp point at 118 ms (t = 9 s).
  EXPECT_EQ(*t, TimeNs::seconds(10));
}

TEST(ConvergenceTime, NeverConvergedReturnsNullopt) {
  TimeSeries rtt;
  for (int i = 0; i < 10; ++i) {
    rtt.add(TimeNs::seconds(i), 0.1 + 0.01 * i);  // monotone ramp
  }
  EXPECT_FALSE(convergence_time(rtt, 0.10, 0.11, 0.0).has_value());
  EXPECT_FALSE(convergence_time(TimeSeries{}, 0, 1, 0).has_value());
}

TEST(ConvergenceTime, AlwaysInBandReturnsStart) {
  TimeSeries rtt;
  for (int i = 0; i < 5; ++i) rtt.add(TimeNs::seconds(i), 0.1);
  const auto t = convergence_time(rtt, 0.1, 0.1, 0.001);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, TimeNs::zero());
}

TEST(ConvergenceTime, VegasConvergesWithinAFewSeconds) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(20);
  const SoloResult r = run_solo(vegas_maker(), cfg);
  const auto t = convergence_time(r.rtt, r.d_min_s, r.d_max_s, 0.002);
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(*t, TimeNs::seconds(5));
}

TEST(RateDelaySweep, VegasCurveIsFlatDeltaAndDecreasingDmax) {
  RateDelaySweepConfig cfg;
  cfg.min_rate = Rate::mbps(1);
  cfg.max_rate = Rate::mbps(64);
  cfg.points = 4;
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(20);
  const auto sweep = rate_delay_sweep(vegas_maker(), cfg);
  ASSERT_EQ(sweep.size(), 4u);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].link_rate, sweep[i - 1].link_rate);
    // d_max decreases with C for the Vegas family (Fig. 2's shape).
    EXPECT_LE(sweep[i].d_max_s, sweep[i - 1].d_max_s + 0.001);
  }
  // delta(C) = 0 for Vegas at every rate.
  for (const auto& p : sweep) EXPECT_LT(p.delta_s(), 0.004);

  const DelayBounds b = delay_bounds(sweep, Rate::mbps(2));
  EXPECT_GT(b.d_max_s, 0.05);
  EXPECT_LT(b.delta_max_s, 0.004);
  // lambda filtering: bounds over an empty set are zero.
  const DelayBounds none = delay_bounds(sweep, Rate::gbps(1));
  EXPECT_EQ(none.d_max_s, 0.0);
}

TEST(Fairness, ReportsRatioJainUtilization) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  for (double w : {400.0, 100.0}) {
    FlowSpec f;
    f.cca = std::make_unique<ConstCwnd>(w);
    f.min_rtt = TimeNs::millis(50);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(20));
  const FairnessReport rep =
      measure_fairness(sc, TimeNs::seconds(10), TimeNs::seconds(20));
  ASSERT_EQ(rep.throughput_mbps.size(), 2u);
  // FIFO sharing is proportional to cwnd: ~4:1.
  EXPECT_NEAR(rep.ratio, 4.0, 0.5);
  EXPECT_LT(rep.jain, 0.95);
  EXPECT_NEAR(rep.utilization, 1.0, 0.05);
}

TEST(Fairness, SFairnessVerdict) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<ConstCwnd>(200.0);
    f.min_rtt = TimeNs::millis(50);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(20));
  const auto verdict =
      check_s_fairness(sc, 2.0, TimeNs::seconds(5), TimeNs::seconds(20));
  EXPECT_TRUE(verdict.s_fair);
  EXPECT_LT(verdict.worst_suffix_ratio, 1.5);
}

TEST(RateRange, ClosedFormsMatchPaperExamples) {
  // Paper §6.3: D = 10 ms, s = 2, Rmax = 100 ms -> range ~ 2^10 ~ 10^3.
  RateRangeParams p;
  p.d = TimeNs::millis(10);
  p.s = 2.0;
  p.rm = TimeNs::zero();
  p.rmax = TimeNs::millis(100);
  EXPECT_NEAR(exponential_rate_range(p), std::pow(2.0, 9.0), 1.0);
  // With s = 4 the paper quotes ~2^20 ~ 10^6 (s^( (100-10)/10 ) = 4^9).
  p.s = 4.0;
  EXPECT_NEAR(exponential_rate_range(p), std::pow(4.0, 9.0), 1.0);
  // Vegas family: (Rmax - Rm)/D * (1 - 1/s) = 10 * 0.75 = 7.5.
  EXPECT_NEAR(vegas_family_rate_range(p), 7.5, 1e-9);
  EXPECT_NEAR(vegas_family_mu_plus(p), 7.5, 1e-9);
}

TEST(RateRange, ExponentialBeatsVegasFamilyByOrders) {
  RateRangeParams p;
  p.d = TimeNs::millis(10);
  p.s = 2.0;
  p.rm = TimeNs::millis(10);
  p.rmax = TimeNs::millis(150);
  EXPECT_GT(exponential_rate_range(p) / vegas_family_rate_range(p), 100.0);
}

TEST(RateRange, ExponentialMuInterpolates) {
  RateRangeParams p;
  p.d = TimeNs::millis(10);
  p.s = 2.0;
  p.rm = TimeNs::millis(100);
  p.rmax = TimeNs::millis(100);
  // At rtt = Rm + Rmax the normalized rate is 1 (mu-).
  EXPECT_NEAR(exponential_mu(p, TimeNs::millis(200)), 1.0, 1e-9);
  // Each D less of queueing doubles it.
  EXPECT_NEAR(exponential_mu(p, TimeNs::millis(190)), 2.0, 1e-9);
  EXPECT_NEAR(exponential_mu(p, TimeNs::millis(180)), 4.0, 1e-9);
}

TEST(Equilibrium, ClosedForms) {
  // Vegas: Rm + n*alpha*MSS/C.
  EXPECT_NEAR(vegas_equilibrium_rtt(Rate::mbps(12), TimeNs::millis(100), 1, 4)
                  .to_millis(),
              104.0, 0.01);
  EXPECT_NEAR(vegas_equilibrium_rtt(Rate::mbps(12), TimeNs::millis(100), 2, 4)
                  .to_millis(),
              108.0, 0.01);
  // BBR cwnd-limited: 2*Rm + n*quanta*MSS/C.
  EXPECT_NEAR(
      bbr_cwnd_limited_rtt(Rate::mbps(12), TimeNs::millis(100), 2, 3)
          .to_millis(),
      206.0, 0.01);
  // Rate diverges as RTT -> 2*Rm.
  EXPECT_TRUE(
      bbr_cwnd_limited_rate(TimeNs::millis(199), TimeNs::millis(100), 3)
          .is_infinite());
  EXPECT_NEAR(
      bbr_cwnd_limited_rate(TimeNs::millis(210), TimeNs::millis(100), 3)
          .to_mbps(),
      3 * kMss * 8 / 0.010 / 1e6, 0.01);
  // Copa delta: 4 packets' transmission time.
  EXPECT_NEAR(copa_delta(Rate::mbps(96)).to_millis(), 0.5, 0.01);
  // Vegas-family mu(d) inverse relation.
  EXPECT_NEAR(
      vegas_family_mu(TimeNs::millis(110), TimeNs::millis(100), 4).to_mbps(),
      4 * kMss * 8 / 0.010 / 1e6, 0.01);
}

TEST(PigeonholeFinder, VegasRatesCollideInDelay) {
  PigeonholeConfig cfg;
  cfg.f = 0.9;
  cfg.s = 8.0;
  cfg.lambda = Rate::mbps(2);
  cfg.max_steps = 3;
  cfg.min_rtt = TimeNs::millis(100);
  cfg.duration = TimeNs::seconds(30);
  const PigeonholePair pair = find_rate_pair(vegas_maker(), cfg);
  ASSERT_TRUE(pair.found);
  EXPECT_GE(pair.fast.link_rate / pair.slow.link_rate, cfg.s / cfg.f - 0.01);
  EXPECT_LT(pair.dmax_gap_s, cfg.epsilon_s);
  // Vegas is maximally delay-convergent.
  EXPECT_LT(pair.delta_max_s, 0.004);
  const PigeonholeSummary sum = pair.summary();
  EXPECT_TRUE(sum.found);
  EXPECT_GT(sum.x2_mbps, 7.0 * sum.x1_mbps);
  EXPECT_EQ(sum.dmax_by_step_s.size(), 3u);
}

TEST(JitterSearch, CleanSchedulesKeepConstCwndPredictable) {
  // Two fixed-window flows cannot starve each other under any bounded-jitter
  // schedule; the search reports no fairness violation at s = 4.
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(5);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.d = TimeNs::millis(10);
  cfg.duration = TimeNs::seconds(15);
  cfg.f = 0.05;  // ConstCwnd(50) on 5 Mbit/s is efficient enough
  cfg.s = 4.0;
  cfg.random_schedules = 2;
  const JitterSearchResult res =
      search_jitter_adversary(const_cwnd_maker(50), cfg);
  EXPECT_FALSE(res.any_violation);
  EXPECT_GE(res.outcomes.size(), 8u);
  EXPECT_LT(res.worst_ratio, 4.0);
}

TEST(JitterSearch, FindsVegasUnderutilization) {
  // Vegas under a constant-D schedule on one flow keeps the pair utilizing,
  // but square-wave schedules create min-RTT confusion; the point here is
  // the harness surfaces per-schedule outcomes.
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.d = TimeNs::millis(20);
  cfg.duration = TimeNs::seconds(20);
  cfg.f = 0.5;
  cfg.s = 3.0;
  cfg.random_schedules = 1;
  const JitterSearchResult res = search_jitter_adversary(vegas_maker(), cfg);
  ASSERT_FALSE(res.outcomes.empty());
  // The no-jitter baseline must be efficient and fair.
  EXPECT_EQ(res.outcomes.front().name, "none");
  EXPECT_GT(res.outcomes.front().utilization, 0.9);
  EXPECT_LT(res.outcomes.front().ratio, 2.0);
}

}  // namespace
}  // namespace ccstarve
