// Unit tests for the Mahimahi-format trace substrate (src/emu).
#include <gtest/gtest.h>

#include <sstream>

#include "cc/misc.hpp"
#include "cc/vegas.hpp"
#include "emu/trace.hpp"
#include "emu/trace_link.hpp"
#include "sim/link.hpp"
#include "sim/receiver.hpp"
#include "sim/sender.hpp"
#include "sim/simulator.hpp"

namespace ccstarve {
namespace {

TEST(DeliveryTrace, ParsesMahimahiFormat) {
  std::istringstream in("0\n5\n5\n12\n");
  const DeliveryTrace t = DeliveryTrace::parse(in);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.opportunities()[0], TimeNs::zero());
  EXPECT_EQ(t.opportunities()[1], TimeNs::millis(5));
  EXPECT_EQ(t.opportunities()[2], TimeNs::millis(5));  // two in one ms
  EXPECT_EQ(t.opportunities()[3], TimeNs::millis(12));
  EXPECT_EQ(t.span(), TimeNs::millis(13));
}

TEST(DeliveryTrace, RejectsMalformedInput) {
  std::istringstream bad("1\nabc\n");
  EXPECT_THROW(DeliveryTrace::parse(bad), std::runtime_error);
  std::istringstream decreasing("5\n3\n");
  EXPECT_THROW(DeliveryTrace::parse(decreasing), std::runtime_error);
}

TEST(DeliveryTrace, RoundTripsThroughWriter) {
  std::istringstream in("0\n7\n7\n20\n");
  const DeliveryTrace t = DeliveryTrace::parse(in);
  std::ostringstream out;
  t.write(out);
  EXPECT_EQ(out.str(), "0\n7\n7\n20\n");
}

TEST(DeliveryTrace, ConstantGeneratorMatchesRate) {
  const DeliveryTrace t =
      DeliveryTrace::constant(Rate::mbps(12), TimeNs::seconds(1));
  // 12 Mbit/s = 1 packet per ms = ~1000 opportunities in 1 s.
  EXPECT_NEAR(static_cast<double>(t.size()), 1000.0, 5.0);
  EXPECT_NEAR(t.mean_rate().to_mbps(), 12.0, 0.5);
}

TEST(DeliveryTrace, SawtoothAveragesBetweenExtremes) {
  const DeliveryTrace t = DeliveryTrace::sawtooth(
      Rate::mbps(2), Rate::mbps(10), TimeNs::millis(200), TimeNs::seconds(2));
  EXPECT_NEAR(t.mean_rate().to_mbps(), 6.0, 1.0);
}

TEST(DeliveryTrace, PoissonHitsMeanRate) {
  const DeliveryTrace t =
      DeliveryTrace::poisson(Rate::mbps(8), TimeNs::seconds(5), 99);
  EXPECT_NEAR(t.mean_rate().to_mbps(), 8.0, 1.0);
}

class CountSink final : public PacketHandler {
 public:
  void handle(Packet) override { ++count; }
  int count = 0;
};

TEST(TraceDrivenLink, DeliversAtOpportunities) {
  Simulator sim;
  CountSink sink;
  std::istringstream in("1\n2\n3\n");
  TraceDrivenLink link(sim, DeliveryTrace::parse(in), {}, sink);
  for (int i = 0; i < 2; ++i) link.handle(Packet{});
  sim.run_until(TimeNs::millis(2));
  EXPECT_EQ(sink.count, 2);
  EXPECT_EQ(link.opportunities_used(), 2u);
}

TEST(TraceDrivenLink, WastesIdleOpportunitiesAndLoops) {
  Simulator sim;
  CountSink sink;
  std::istringstream in("1\n2\n");
  TraceDrivenLink link(sim, DeliveryTrace::parse(in), {}, sink);
  sim.run_until(TimeNs::millis(10));  // trace loops every 3 ms
  EXPECT_EQ(sink.count, 0);
  EXPECT_GE(link.opportunities_wasted(), 6u);
  // A packet injected later is served by a looped opportunity.
  link.handle(Packet{});
  sim.run_until(TimeNs::millis(20));
  EXPECT_EQ(sink.count, 1);
}

TEST(TraceDrivenLink, DropTail) {
  Simulator sim;
  CountSink sink;
  std::istringstream in("1000\n");
  TraceDrivenLink::Config cfg;
  cfg.buffer_bytes = 2 * kMss;
  TraceDrivenLink link(sim, DeliveryTrace::parse(in), cfg, sink);
  for (int i = 0; i < 5; ++i) link.handle(Packet{});
  EXPECT_EQ(link.drops(), 3u);
  EXPECT_EQ(link.queued_bytes(), 2ull * kMss);
}

TEST(TraceDrivenLink, SustainsVegasFlowEndToEnd) {
  // Wire a full flow over a trace-driven bottleneck: sender -> trace link ->
  // receiver -> sender, and check Vegas fills the trace's mean rate.
  Simulator sim;
  const DeliveryTrace trace =
      DeliveryTrace::constant(Rate::mbps(12), TimeNs::seconds(2));

  // Chain assembled in dependency order.
  Sender::Config sc;
  struct Pipe final : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet p) override { next->handle(p); }
  };
  Pipe to_link;
  auto sender = std::make_unique<Sender>(
      sim, sc, std::make_unique<Vegas>(), to_link);
  Receiver receiver(sim, AckPolicy{}, *sender);
  PropagationDelay prop(sim, TimeNs::millis(40), receiver);
  TraceDrivenLink link(sim, trace, {}, prop);
  to_link.next = &link;

  sender->start(TimeNs::zero());
  sim.run_until(TimeNs::seconds(20));
  const double mbps =
      static_cast<double>(sender->delivered_bytes()) * 8.0 / 20.0 / 1e6;
  EXPECT_GT(mbps, 10.0);
}

}  // namespace
}  // namespace ccstarve
