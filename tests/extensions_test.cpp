// Tests for the extension modules: ECN/AQM (§6.4), the traffic shapers
// (token bucket, GSO burster), LEDBAT, and the Appendix-C model checker.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/allegro.hpp"
#include "cc/ecn_reno.hpp"
#include "cc/ledbat.hpp"
#include "cc/reno.hpp"
#include "core/model_check.hpp"
#include "core/solo.hpp"
#include "sim/aqm.hpp"
#include "sim/scenario.hpp"
#include "sim/shaper.hpp"

namespace ccstarve {
namespace {

// ---------- AQM policies ----------

TEST(ThresholdEcn, MarksAboveThreshold) {
  ThresholdEcn aqm(10 * kMss);
  EXPECT_FALSE(aqm.should_mark(9 * kMss));
  EXPECT_TRUE(aqm.should_mark(10 * kMss));
  EXPECT_TRUE(aqm.should_mark(50 * kMss));
}

TEST(RedEcn, RampsBetweenThresholds) {
  RedEcn::Params p;
  p.min_threshold_bytes = 10 * kMss;
  p.max_threshold_bytes = 30 * kMss;
  p.max_probability = 1.0;
  p.queue_weight = 1.0;  // no averaging: test the ramp directly
  RedEcn aqm(p);
  // Below min: never.
  int marks = 0;
  for (int i = 0; i < 200; ++i) marks += aqm.should_mark(5 * kMss);
  EXPECT_EQ(marks, 0);
  // Above max: always.
  marks = 0;
  for (int i = 0; i < 200; ++i) marks += aqm.should_mark(40 * kMss);
  EXPECT_EQ(marks, 200);
  // Mid-ramp: roughly half.
  marks = 0;
  for (int i = 0; i < 2000; ++i) marks += aqm.should_mark(20 * kMss);
  EXPECT_NEAR(marks, 1000, 150);
}

TEST(RedEcn, AveragesQueue) {
  RedEcn::Params p;
  p.queue_weight = 0.5;
  RedEcn aqm(p);
  aqm.should_mark(100 * kMss);
  aqm.should_mark(100 * kMss);
  EXPECT_GT(aqm.average_queue_bytes(), 100.0 * kMss * 0.7);
}

TEST(EcnPlumbing, MarksFlowToSenderAndBack) {
  // A window big enough to keep ~20 packets queued on a slow link; with a
  // 5-packet marking threshold, ECN echoes must reach the CCA.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(4);
  cfg.aqm = std::make_unique<ThresholdEcn>(5 * kMss);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<EcnReno>();
  f.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(20));
  EXPECT_GT(sc.link().ce_marks(), 0u);
  const auto& cca = static_cast<const EcnReno&>(sc.sender(0).cca());
  EXPECT_GT(cca.ecn_backoffs(), 0u);
  // And the AQM keeps the queue bounded: RTT stays well under bufferbloat.
  const double rtt =
      sc.stats(0).rtt_seconds.mean_over(TimeNs::seconds(10), TimeNs::seconds(20));
  EXPECT_LT(rtt, 0.150);
  EXPECT_GT(sc.throughput(0).to_mbps(), 3.0);
}

// ---------- ECN-Reno (§6.4) ----------

TEST(EcnReno, BacksOffOncePerRttOnEce) {
  EcnReno cca;
  AckSample a;
  a.now = TimeNs::seconds(1);
  a.rtt = TimeNs::millis(100);
  a.newly_acked_bytes = kMss;
  a.ece = true;
  const uint64_t w0 = cca.cwnd_bytes();
  cca.on_ack(a);
  const uint64_t w1 = cca.cwnd_bytes();
  EXPECT_LT(w1, w0);
  // A second ECE within the same RTT is ignored.
  a.now = TimeNs::seconds(1) + TimeNs::millis(10);
  cca.on_ack(a);
  EXPECT_EQ(cca.cwnd_bytes(), w1);
  EXPECT_EQ(cca.ecn_backoffs(), 1u);
}

TEST(EcnReno, ToleratesFastRetransmitLoss) {
  EcnReno cca;
  for (int i = 0; i < 50; ++i) {
    AckSample a;
    a.now = TimeNs::millis(10 * i);
    a.rtt = TimeNs::millis(50);
    a.newly_acked_bytes = kMss;
    cca.on_ack(a);
  }
  const uint64_t grown = cca.cwnd_bytes();
  LossSample loss;
  loss.is_timeout = false;
  cca.on_loss(loss);
  EXPECT_EQ(cca.cwnd_bytes(), grown);  // ignored (§6.4)
  EXPECT_EQ(cca.tolerated_losses(), 1u);
  loss.is_timeout = true;
  cca.on_loss(loss);
  EXPECT_LT(cca.cwnd_bytes(), grown);  // timeouts still bite
}

TEST(EcnReno, ImmuneToAsymmetricRandomLossUnderAqm) {
  // The §6.4 conjecture, as a regression test: rerun §5.4's asymmetric-loss
  // shape with ECN-Reno + threshold AQM and require a bounded ratio.
  const Rate link = Rate::mbps(30);
  ScenarioConfig cfg;
  cfg.link_rate = link;
  cfg.buffer_bytes =
      static_cast<uint64_t>(link.bytes_per_second() * 0.040);
  cfg.aqm = std::make_unique<ThresholdEcn>(cfg.buffer_bytes / 4);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<EcnReno>();
    f.min_rtt = TimeNs::millis(40);
    if (i == 0) {
      f.loss_rate = 0.02;
      f.loss_seed = 77;
    }
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(40));
  const double lossy =
      sc.throughput(0, TimeNs::seconds(10), TimeNs::seconds(40)).to_mbps();
  const double clean =
      sc.throughput(1, TimeNs::seconds(10), TimeNs::seconds(40)).to_mbps();
  EXPECT_LT(clean / lossy, 2.0);        // no starvation
  EXPECT_GT(lossy + clean, 0.75 * 30);  // and the link is used
}

// ---------- Token bucket ----------

TEST(TokenBucketFilter, PassesWithinBurstDelaysBeyond) {
  Simulator sim;
  struct Sink final : PacketHandler {
    std::vector<TimeNs> at;
    Simulator& sim;
    explicit Sink(Simulator& s) : sim(s) {}
    void handle(Packet) override { at.push_back(sim.now()); }
  } sink(sim);
  TokenBucketFilter::Config cfg;
  cfg.rate = Rate::mbps(12);       // refills 1 pkt per ms
  cfg.burst_bytes = 2 * kMss;      // two free packets
  TokenBucketFilter tbf(sim, cfg, sink);
  for (int i = 0; i < 4; ++i) tbf.handle(Packet{});
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.at.size(), 4u);
  EXPECT_EQ(sink.at[0], TimeNs::zero());
  EXPECT_EQ(sink.at[1], TimeNs::zero());
  // The 3rd and 4th wait for refills (~1 ms per packet).
  EXPECT_NEAR(sink.at[2].to_millis(), 1.0, 0.1);
  EXPECT_NEAR(sink.at[3].to_millis(), 2.0, 0.1);
  EXPECT_EQ(tbf.delayed_packets(), 2u);
}

TEST(TokenBucketFilter, LongRunRateIsShaped) {
  Simulator sim;
  struct Count final : PacketHandler {
    uint64_t bytes = 0;
    void handle(Packet p) override { bytes += p.bytes; }
  } sink;
  TokenBucketFilter::Config cfg;
  cfg.rate = Rate::mbps(6);
  TokenBucketFilter tbf(sim, cfg, sink);
  // Offer 12 Mbit/s for 5 s.
  for (int i = 0; i < 5000; ++i) {
    sim.schedule_at(TimeNs::millis(i), [&tbf] { tbf.handle(Packet{}); });
  }
  sim.run_until(TimeNs::seconds(20));
  // Everything eventually passes, but over the first 5 s only ~6 Mbit/s.
  EXPECT_EQ(sink.bytes, 5000ull * kMss);
}

// ---------- GSO burster ----------

TEST(GsoBurster, ReleasesFullBurstsImmediately) {
  Simulator sim;
  struct Sink final : PacketHandler {
    std::vector<TimeNs> at;
    Simulator& sim;
    explicit Sink(Simulator& s) : sim(s) {}
    void handle(Packet) override { at.push_back(sim.now()); }
  } sink(sim);
  GsoBurster::Config cfg;
  cfg.burst_pkts = 4;
  GsoBurster gso(sim, cfg, sink);
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(TimeNs::millis(i), [&gso] { gso.handle(Packet{}); });
  }
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.at.size(), 4u);
  // All four left together when the burst filled (at t = 3 ms).
  for (const TimeNs t : sink.at) EXPECT_EQ(t, TimeNs::millis(3));
  EXPECT_EQ(gso.bursts_released(), 1u);
}

TEST(GsoBurster, FlushesPartialBurstOnTimeout) {
  Simulator sim;
  struct Sink final : PacketHandler {
    int count = 0;
    void handle(Packet) override { ++count; }
  } sink;
  GsoBurster::Config cfg;
  cfg.burst_pkts = 8;
  cfg.flush_timeout = TimeNs::millis(5);
  GsoBurster gso(sim, cfg, sink);
  gso.handle(Packet{});
  gso.handle(Packet{});
  sim.run_until(TimeNs::millis(4));
  EXPECT_EQ(sink.count, 0);
  sim.run_until(TimeNs::millis(10));
  EXPECT_EQ(sink.count, 2);
}

// ---------- LEDBAT ----------

TEST(Ledbat, ConvergesToTargetDelay) {
  SoloConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(40);
  const SoloResult r =
      run_solo([] { return std::unique_ptr<Cca>(new Ledbat()); }, cfg);
  EXPECT_GT(r.utilization(), 0.9);
  // Queueing delay hovers at the 25 ms target: RTT ~ 75 ms.
  EXPECT_NEAR(r.d_max_s, 0.075, 0.012);
  // Delay-convergent: small oscillation — starvation-prone by Theorem 1.
  EXPECT_LT(r.delta_s(), 0.02);
}

TEST(Ledbat, YieldsToReno) {
  // LEDBAT's design goal: scavenge. Against Reno it must back off.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.buffer_bytes = 100ull * kMss;
  Scenario sc(std::move(cfg));
  FlowSpec a;
  a.cca = std::make_unique<Ledbat>();
  a.min_rtt = TimeNs::millis(50);
  sc.add_flow(std::move(a));
  FlowSpec b;
  b.cca = std::make_unique<NewReno>();
  b.min_rtt = TimeNs::millis(50);
  b.start_at = TimeNs::seconds(5);
  sc.add_flow(std::move(b));
  sc.run_until(TimeNs::seconds(40));
  const double ledbat =
      sc.throughput(0, TimeNs::seconds(20), TimeNs::seconds(40)).to_mbps();
  const double reno =
      sc.throughput(1, TimeNs::seconds(20), TimeNs::seconds(40)).to_mbps();
  EXPECT_GT(reno, 2.0 * ledbat);
}

// ---------- Model checker (Appendix C) ----------

TEST(ModelCheck, AimdDropTailHasNoStarvationTrace) {
  // The paper: "no trace of length 10 RTTs where starvation is unbounded
  // for two AIMD flows when the bottleneck has 1 BDP of buffer."
  ModelCheckConfig cfg;
  cfg.preferential_loss = false;
  const ModelCheckResult r = model_check(AbstractAimd{}, cfg);
  EXPECT_LT(r.worst_final_ratio, 4.0);
  EXPECT_GT(r.worst_final_utilization, 0.5);
  EXPECT_GT(r.states_explored, 0u);
}

TEST(ModelCheck, AimdWithBiasedLossStarves) {
  ModelCheckConfig cfg;
  cfg.preferential_loss = true;
  cfg.horizon_rtts = 12;
  const ModelCheckResult r = model_check(AbstractAimd{}, cfg);
  EXPECT_GT(r.worst_final_ratio, 10.0);
  EXPECT_FALSE(r.witness.empty());
}

TEST(ModelCheck, VegasModelStarvesUnderDelayAdversary) {
  ModelCheckConfig cfg;
  cfg.capacity_pkts_per_rtt = 30;
  cfg.buffer_pkts = 30;
  cfg.d_rtt = 1.0;
  cfg.initial_cwnd1 = cfg.initial_cwnd2 = 1;
  cfg.horizon_rtts = 30;
  cfg.max_cwnd_pkts = 128;
  cfg.preferential_loss = false;
  const ModelCheckResult r = model_check(AbstractVegas{}, cfg);
  EXPECT_GT(r.worst_final_ratio, 5.0);
}

TEST(ModelCheck, ExpMappingModelStaysBounded) {
  // Same adversary, the §6.3 design: bounded near s^2.
  ModelCheckConfig cfg;
  cfg.capacity_pkts_per_rtt = 30;
  cfg.buffer_pkts = 30;
  cfg.d_rtt = 1.0;
  cfg.initial_cwnd1 = cfg.initial_cwnd2 = 1;
  cfg.horizon_rtts = 30;
  cfg.max_cwnd_pkts = 128;
  cfg.preferential_loss = false;
  const ModelCheckResult r =
      model_check(AbstractExpMapping{1.0, 2.0, 3.0, 2}, cfg);
  EXPECT_LT(r.worst_final_ratio, 2.0 * 2.0 + 0.5);
}

TEST(ModelCheck, WitnessReplaysToWorstState) {
  ModelCheckConfig cfg;
  cfg.preferential_loss = true;
  cfg.horizon_rtts = 6;
  const ModelCheckResult r = model_check(AbstractAimd{}, cfg);
  ASSERT_FALSE(r.witness.empty());
  EXPECT_EQ(r.witness.size(), static_cast<size_t>(cfg.horizon_rtts));
  // Each step names a round and a choice.
  EXPECT_NE(r.witness.front().find("r0"), std::string::npos);
}

}  // namespace
}  // namespace ccstarve
