// Flight-recorder suite: digest transparency, telemetry cross-check,
// ring-eviction window behaviour and export round-trip.
//
// The transparency half re-runs every committed golden scenario with a
// FlightRecorder (and a crossing-feeding FlowTelemetry) attached and pins
// the trace digest against tests/golden/<name>.digest — the same files
// golden_trace_test.cpp checks bare. A flight recorder that perturbed as
// much as one packet event would flip the fnv1a64 here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "golden_scenarios.hpp"
#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "obs/telemetry.hpp"

#ifndef CCSTARVE_GOLDEN_DIR
#error "CCSTARVE_GOLDEN_DIR must point at tests/golden"
#endif

namespace ccstarve::golden {
namespace {

struct StoredDigest {
  std::string digest_hex;
  uint64_t records = 0;
};

std::optional<StoredDigest> read_digest(const std::string& name) {
  std::ifstream in(std::string(CCSTARVE_GOLDEN_DIR) + "/" + name + ".digest");
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream ls(line);
  std::string k1, k2;
  if (!(ls >> k1 >> k2)) return std::nullopt;
  if (k1.rfind("fnv1a64=", 0) != 0 || k2.rfind("records=", 0) != 0) {
    return std::nullopt;
  }
  return StoredDigest{k1.substr(8), std::stoull(k2.substr(8))};
}

GoldenSpec spec_by_name(const std::string& name) {
  for (const GoldenSpec& s : golden_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no golden spec named " << name;
  return {};
}

// The §5.1 mini-RTT attack tuned until the victim actually starves at the
// end-of-run verdict (the committed copa_minrtt_attack golden is milder —
// it crosses transiently but finishes at ratio ~1.9). Used by the tests
// that assert on the verdict itself.
GoldenSpec starving_attack_spec() {
  return {.name = "starving_attack",
          .flow_set = "copa-default:rtt=59:datajitter=allbutone:1,0.15"
                      "+copa-default:rtt=59:datajitter=const:1",
          .link_mbps = 120};
}

// --- digest transparency over the full golden registry -------------------

class FlightGolden : public ::testing::TestWithParam<GoldenSpec> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, FlightGolden, ::testing::ValuesIn(golden_specs()),
    [](const ::testing::TestParamInfo<GoldenSpec>& info) {
      return info.param.name;
    });

TEST_P(FlightGolden, AttachedRecorderLeavesDigestUntouched) {
  const GoldenSpec& spec = GetParam();
  const auto stored = read_digest(spec.name);
  ASSERT_TRUE(stored.has_value())
      << "missing committed digest for " << spec.name
      << " — run golden_trace_test with CCSTARVE_UPDATE_GOLDEN=1 first";

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kAlways;
  fc.events_per_flow = 4096;
  obs::FlightRecorder flight(std::move(fc));

  // Telemetry feeds the recorder detector crossings and the verdict; both
  // probes together must still be invisible to the packet event stream.
  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(std::move(tc));

  const GoldenResult got = run_golden_flight(spec, &flight, &telemetry);
  EXPECT_EQ(got.digest_hex, stored->digest_hex) << spec.name;
  EXPECT_EQ(got.records, stored->records) << spec.name;
  EXPECT_GT(flight.recorded(), 0u) << "recorder saw no events";
}

// --- flight counters vs telemetry bucket gauges --------------------------

// The exported cwnd_bytes counter is sampled at ACK processing and emitted
// on change; FlowTelemetry's cwnd_bytes ring holds the last ACK-sampled
// cwnd per closed bucket. Same signal, two observers — for every bucket
// sample the last flight counter value at or before the bucket edge (one
// bucket of skew allowed for edge effects) must agree exactly.
TEST(FlightCrossCheck, CwndCounterMatchesTelemetryBuckets) {
  const GoldenSpec spec = spec_by_name("copa_minrtt_attack");

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kAlways;
  fc.events_per_flow = size_t{1} << 20;  // no eviction: full history
  obs::FlightRecorder flight(std::move(fc));

  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);

  run_golden_flight(spec, &flight, &telemetry);

  std::ostringstream os;
  obs::write_chrome_trace(os, flight);
  std::istringstream is(os.str());
  std::string err;
  const auto trace = obs::read_chrome_trace(is, &err);
  ASSERT_TRUE(trace.has_value()) << err;
  ASSERT_EQ(trace->flows, 2u);

  const double interval_s = tc.interval.to_seconds();
  size_t compared = 0;
  for (size_t f = 0; f < trace->flows; ++f) {
    const auto& ring = telemetry.flow(f).cwnd_bytes;
    const auto& counter = trace->cwnd[f];
    ASSERT_FALSE(counter.empty()) << "flow " << f;
    for (size_t i = 0; i < ring.size(); ++i) {
      const double t = ring.at(i).at.to_seconds();
      const double want = ring.at(i).value;
      // Last counter sample at or before the bucket edge; allow one bucket
      // of skew for an emission racing the edge.
      double got = -1, got_skew = -1;
      for (const auto& s : counter) {
        if (s.t_s <= t + 1e-9) got = s.value;
        if (s.t_s <= t + interval_s + 1e-9) got_skew = s.value;
      }
      if (got < 0) continue;  // bucket closed before the first ACK
      EXPECT_TRUE(want == got || want == got_skew)
          << "flow " << f << " bucket at t=" << t << ": telemetry " << want
          << " vs flight " << got << " (skew " << got_skew << ")";
      ++compared;
    }
  }
  EXPECT_GT(compared, 100u) << "cross-check barely exercised";
}

// --- ring eviction + retroactive trigger window --------------------------

// With a deliberately tiny per-flow ring the recorder wraps long before the
// first starvation crossing arms the trigger. The export must still be
// well-formed, confined to [trigger - window, trigger + window], and the
// ring totals must prove eviction actually happened.
TEST(FlightRing, EvictionKeepsExportWellFormedAndWindowed) {
  const GoldenSpec spec = spec_by_name("copa_minrtt_attack");

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kStarvation;
  fc.window = TimeNs::seconds(1);
  fc.events_per_flow = 256;
  obs::FlightRecorder flight(std::move(fc));

  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);

  run_golden_flight(spec, &flight, &telemetry);

  ASSERT_TRUE(flight.triggered()) << "scenario no longer crosses; pick "
                                     "another starving golden spec";
  ASSERT_TRUE(flight.should_export());
  EXPECT_GT(flight.flow_ring(0).total(), flight.flow_ring(0).capacity())
      << "ring never wrapped — shrink events_per_flow";

  TimeNs lo = TimeNs::zero(), hi = TimeNs::zero();
  flight.export_window(&lo, &hi);
  EXPECT_GE(lo.ns(), 0);
  EXPECT_EQ(hi.ns() - flight.trigger_at().ns(), fc.window.ns());

  std::ostringstream os;
  obs::write_chrome_trace(os, flight);
  std::istringstream is(os.str());
  std::string err;
  const auto trace = obs::read_chrome_trace(is, &err);
  ASSERT_TRUE(trace.has_value()) << err;
  EXPECT_EQ(trace->trigger, "starvation");
  EXPECT_NEAR(trace->trigger_at_s, flight.trigger_at().to_seconds(), 1e-6);

  const double lo_s = lo.to_seconds() - 1e-6;
  const double hi_s = hi.to_seconds() + 1e-6;
  auto in_window = [&](double t) { return t >= lo_s && t <= hi_s; };
  for (size_t f = 0; f < trace->flows; ++f) {
    for (const auto& s : trace->cwnd[f]) EXPECT_TRUE(in_window(s.t_s));
    for (const auto& s : trace->inflight[f]) EXPECT_TRUE(in_window(s.t_s));
    for (const auto& g : trace->gates[f]) {
      EXPECT_TRUE(in_window(g.t_s));
      EXPECT_TRUE(in_window(g.t_s + g.dur_s));
    }
  }
  for (const auto& s : trace->queue) EXPECT_TRUE(in_window(s.t_s));
  for (const auto& i : trace->instants) {
    // The verdict instant deliberately escapes the window so the export
    // always carries the run's conclusion.
    if (i.name == "starvation_verdict") continue;
    EXPECT_TRUE(in_window(i.t_s)) << i.name << " at " << i.t_s;
  }

  // Post-trigger freeze: the recorder must have stopped accepting events
  // once the window past the crossing was fully recorded (the run lasts
  // well beyond trigger + window).
  EXPECT_TRUE(flight.frozen());
}

// --- export round-trip & trigger modes -----------------------------------

TEST(FlightExport, RoundTripPreservesStructureAndVerdict) {
  const GoldenSpec spec = starving_attack_spec();

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kAlways;
  fc.flow_labels = {"copa-attacked", "copa-steady"};
  obs::FlightRecorder flight(std::move(fc));

  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);

  run_golden_flight(spec, &flight, &telemetry);

  std::ostringstream os;
  obs::write_chrome_trace(os, flight);
  std::istringstream is(os.str());
  std::string err;
  const auto trace = obs::read_chrome_trace(is, &err);
  ASSERT_TRUE(trace.has_value()) << err;

  EXPECT_EQ(trace->flows, 2u);
  ASSERT_EQ(trace->labels.size(), 2u);
  EXPECT_EQ(trace->labels[0], "copa-attacked");
  EXPECT_EQ(trace->labels[1], "copa-steady");
  EXPECT_EQ(trace->trigger, "always");

  // §5.1 shape: the jitter-attacked Copa starves, congestion-limited.
  ASSERT_TRUE(trace->verdict_present);
  EXPECT_TRUE(trace->verdict_starved);
  EXPECT_EQ(trace->verdict_flow, 0);
  EXPECT_EQ(trace->verdict_kind, "congestion-limited");
  EXPECT_GE(trace->verdict_ratio, 2.0);

  // Gate slices must tile without overlap per flow (sorted, no slice
  // starting before the previous one ended).
  for (size_t f = 0; f < trace->flows; ++f) {
    for (size_t i = 1; i < trace->gates[f].size(); ++i) {
      EXPECT_GE(trace->gates[f][i].t_s,
                trace->gates[f][i - 1].t_s + trace->gates[f][i - 1].dur_s -
                    1e-6);
    }
  }
}

TEST(FlightExport, NeverTriggerRecordsButExportsMetadataOnly) {
  const GoldenSpec spec = spec_by_name("vegas_solo");

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kNever;
  obs::FlightRecorder flight(std::move(fc));
  run_golden_flight(spec, &flight);

  EXPECT_GT(flight.recorded(), 0u);
  EXPECT_FALSE(flight.should_export());

  // The writer still produces a well-formed (near-empty) document.
  std::ostringstream os;
  obs::write_chrome_trace(os, flight);
  std::istringstream is(os.str());
  std::string err;
  const auto trace = obs::read_chrome_trace(is, &err);
  ASSERT_TRUE(trace.has_value()) << err;
  EXPECT_EQ(trace->trigger, "never");
  for (size_t f = 0; f < trace->flows; ++f) {
    EXPECT_TRUE(trace->cwnd[f].empty());
    EXPECT_TRUE(trace->gates[f].empty());
  }
}

TEST(FlightExport, StarvationTriggerWithoutCrossingExportsNothing) {
  // A solo flow can never cross a pairwise starvation threshold.
  const GoldenSpec spec = spec_by_name("vegas_solo");

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kStarvation;
  obs::FlightRecorder flight(std::move(fc));

  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);
  run_golden_flight(spec, &flight, &telemetry);

  EXPECT_FALSE(flight.triggered());
  EXPECT_FALSE(flight.should_export());
  EXPECT_GT(flight.recorded(), 0u);
}

TEST(FlightExport, TriggerParserAcceptsExactlyTheDocumentedNames) {
  obs::FlightTrigger t;
  EXPECT_TRUE(obs::parse_flight_trigger("starvation", &t));
  EXPECT_EQ(t, obs::FlightTrigger::kStarvation);
  EXPECT_TRUE(obs::parse_flight_trigger("always", &t));
  EXPECT_EQ(t, obs::FlightTrigger::kAlways);
  EXPECT_TRUE(obs::parse_flight_trigger("never", &t));
  EXPECT_EQ(t, obs::FlightTrigger::kNever);
  EXPECT_FALSE(obs::parse_flight_trigger("", &t));
  EXPECT_FALSE(obs::parse_flight_trigger("sometimes", &t));
}

// Forensics over a real starving trace: the rendered table must name the
// starved flow and its dominant binding constraint.
TEST(FlightForensics, NamesTheBindingConstraintForTheStarvedFlow) {
  const GoldenSpec spec = starving_attack_spec();

  obs::FlightConfig fc;
  fc.trigger = obs::FlightTrigger::kStarvation;
  obs::FlightRecorder flight(std::move(fc));

  obs::TelemetryConfig tc;
  tc.flight = &flight;
  obs::FlowTelemetry telemetry(tc);
  run_golden_flight(spec, &flight, &telemetry);
  ASSERT_TRUE(flight.should_export());

  std::ostringstream os;
  obs::write_chrome_trace(os, flight);
  std::istringstream is(os.str());
  const auto trace = obs::read_chrome_trace(is);
  ASSERT_TRUE(trace.has_value());

  std::ostringstream fo;
  ASSERT_TRUE(obs::write_forensics(fo, *trace));
  const std::string text = fo.str();
  EXPECT_NE(text.find("why flow 0"), std::string::npos) << text;
  EXPECT_NE(text.find("congestion-limited"), std::string::npos);
  EXPECT_NE(text.find("cwnd-bound"), std::string::npos);
  EXPECT_NE(text.find("first crossing"), std::string::npos);
}

}  // namespace
}  // namespace ccstarve::golden
