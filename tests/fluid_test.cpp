// Tests for the fluid (ODE) models: equilibria must match the paper's
// closed forms and cross-validate the packet-level implementations.
#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "core/fluid.hpp"

namespace ccstarve {
namespace {

TEST(FluidVegasModel, SoloEquilibriumMatchesClosedForm) {
  FluidFlowSpec f;
  f.cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  const FluidResult r = run_fluid({f}, cfg);
  // q* = alpha/C = 4.8 ms; RTT* = 104.8 ms; full utilization.
  EXPECT_NEAR(r.final_queue_s, 0.0048, 0.0004);
  EXPECT_NEAR(r.final_rtt_s[0],
              vegas_equilibrium_rtt(cfg.link_rate, TimeNs::millis(100), 1, 4)
                  .to_seconds(),
              0.0005);
  EXPECT_NEAR(r.final_rate_mbps[0], 10.0, 0.2);
}

TEST(FluidVegasModel, TwoFlowsShareFairly) {
  FluidFlowSpec a, b;
  a.cca = b.cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  a.initial_window_bytes = 40.0 * kMss;  // very different starts
  b.initial_window_bytes = 4.0 * kMss;
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.duration = TimeNs::seconds(120);
  const FluidResult r = run_fluid({a, b}, cfg);
  EXPECT_NEAR(r.final_rate_mbps[0], r.final_rate_mbps[1], 1.0);
  EXPECT_NEAR(r.final_rate_mbps[0] + r.final_rate_mbps[1], 20.0, 0.5);
}

TEST(FluidVegasModel, ConstantEtaOffsetStarves) {
  // The paper's §4.1 example in fluid form: a flow whose measured delay
  // carries a constant eta sends at ~alpha/(q + eta), independent of C.
  FluidFlowSpec victim, clean;
  victim.cca = clean.cca =
      std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  victim.eta = TimeNs::millis(10);
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(50);
  cfg.duration = TimeNs::seconds(120);
  const FluidResult r = run_fluid({victim, clean}, cfg);
  // victim rate ~ alpha / (q* + eta) with q* ~ alpha/C_clean-ish ~ 1 ms.
  EXPECT_LT(r.final_rate_mbps[0], 6.0);
  EXPECT_GT(r.final_rate_mbps[1], 42.0);
  // Doubling C would double the clean flow but not the victim: starvation
  // scales without bound.
  FluidConfig cfg2 = cfg;
  cfg2.link_rate = Rate::mbps(100);
  const FluidResult r2 = run_fluid({victim, clean}, cfg2);
  EXPECT_LT(r2.final_rate_mbps[0], 1.3 * r.final_rate_mbps[0]);
  EXPECT_GT(r2.final_rate_mbps[1], 1.8 * r.final_rate_mbps[1]);
}

TEST(FluidBbrModel, CwndLimitedEquilibriumMatchesSection52) {
  // Two flows, Rm = 40 ms: RTT* = 2*Rm + n*quanta/C, each rate = C/2.
  FluidFlowSpec a, b;
  a.cca = b.cca =
      std::make_shared<FluidBbrCwndLimited>(3.0, TimeNs::millis(40));
  a.rm = b.rm = TimeNs::millis(40);
  a.eta = b.eta = TimeNs::millis(40);  // the standing extra Rm of delay
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.duration = TimeNs::seconds(60);
  const FluidResult r = run_fluid({a, b}, cfg);
  const double predicted =
      bbr_cwnd_limited_rtt(cfg.link_rate, TimeNs::millis(40), 2, 3.0)
          .to_seconds();
  EXPECT_NEAR(r.final_rtt_s[0], predicted, 0.002);
  EXPECT_NEAR(r.final_rate_mbps[0], 10.0, 0.8);
  EXPECT_NEAR(r.final_rate_mbps[1], 10.0, 0.8);
}

TEST(FluidBbrModel, RttAsymmetryStarvesSmallRttFlow) {
  // §5.2's RTT-unfairness fixed point: with the extra delay supplied by the
  // *shared* queue, rate_i = quanta/(q - Rm_i); the queue settles just above
  // Rm_large, so the small-Rm flow's denominator is ~Rm_large - Rm_small and
  // its rate collapses (the 40/80 ms experiment's mechanism).
  FluidFlowSpec small, large;
  small.cca = std::make_shared<FluidBbrCwndLimited>(3.0, TimeNs::millis(40));
  large.cca = std::make_shared<FluidBbrCwndLimited>(3.0, TimeNs::millis(80));
  small.rm = TimeNs::millis(40);
  large.rm = TimeNs::millis(80);
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.duration = TimeNs::seconds(240);
  const FluidResult r = run_fluid({small, large}, cfg);
  EXPECT_GT(r.final_rate_mbps[1], 5.0 * r.final_rate_mbps[0]);
  // The shared queue sits just above the larger 2*Rm - Rm = 80 ms anchor.
  EXPECT_GT(r.final_queue_s, 0.080);
}

TEST(FluidJitterAwareModel, EtaDifferenceBoundedByS) {
  // Algorithm 1's designed property, exact in the fluid limit: two flows
  // whose non-congestive delays differ by D end up within a factor s.
  FluidJitterAware::Params p;  // s = 2, D = 10 ms
  FluidFlowSpec a, b;
  a.cca = b.cca = std::make_shared<FluidJitterAware>(p);
  a.eta = TimeNs::millis(10);
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  cfg.duration = TimeNs::seconds(120);
  const FluidResult r = run_fluid({a, b}, cfg);
  const double ratio = r.final_rate_mbps[1] / r.final_rate_mbps[0];
  EXPECT_GT(ratio, 1.2);  // the offset does cost something...
  EXPECT_LE(ratio, p.s + 0.1);  // ...but never more than s
  EXPECT_NEAR(r.final_rate_mbps[0] + r.final_rate_mbps[1], 20.0, 1.0);
}

TEST(FluidModel, SamplesTrajectories) {
  FluidFlowSpec f;
  f.cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  FluidConfig cfg;
  cfg.link_rate = Rate::mbps(5);
  cfg.duration = TimeNs::seconds(10);
  const FluidResult r = run_fluid({f}, cfg);
  ASSERT_EQ(r.rate_mbps.size(), 1u);
  EXPECT_GT(r.rate_mbps[0].size(), 100u);
  EXPECT_GT(r.queue_seconds.size(), 100u);
  // Monotone time axis and non-negative queue throughout.
  for (const auto& s : r.queue_seconds.samples()) EXPECT_GE(s.value, 0.0);
}

}  // namespace
}  // namespace ccstarve
