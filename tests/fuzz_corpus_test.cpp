// Replays the committed fuzz corpus (tests/fuzz_corpus/corpus.txt) under
// the full oracle set, so the cases the fuzzer has historically covered —
// every CCA family, jitter policy, buffer/AQM axis, and the trace-link
// topology — are re-verified on every ctest run, not only when someone
// remembers to run ccstarve_fuzz. A new regression shows up here as the
// exact corpus line (and repro command) that broke.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"

#ifndef CCSTARVE_FUZZ_CORPUS
#error "CCSTARVE_FUZZ_CORPUS must point at tests/fuzz_corpus/corpus.txt"
#endif

namespace ccstarve {
namespace {

std::vector<std::string> corpus_lines() {
  std::ifstream is(CCSTARVE_FUZZ_CORPUS);
  EXPECT_TRUE(is.good()) << "cannot open " << CCSTARVE_FUZZ_CORPUS;
  std::vector<std::string> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  return out;
}

class FuzzCorpus : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    Lines, FuzzCorpus, ::testing::ValuesIn(corpus_lines()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      // Name each test after the case's seed field, unique by construction.
      return "seed_" + info.param.substr(0, info.param.find('|'));
    });

TEST_P(FuzzCorpus, CasePassesAllOracles) {
  std::string err;
  const auto c = check::FuzzCase::from_line(GetParam(), &err);
  ASSERT_TRUE(c.has_value()) << "malformed corpus line: " << err;
  const auto r = check::run_case(*c);
  EXPECT_FALSE(r.has_value())
      << "corpus case failed [" << r->oracle << "]:\n"
      << r->detail << "\nrepro: " << c->repro_command();
}

TEST(FuzzCorpusFile, HasMeaningfulCoverage) {
  const auto lines = corpus_lines();
  EXPECT_GE(lines.size(), 15u);
  // Seeds double as line ids; they must be unique for test naming.
  std::vector<std::string> seeds;
  for (const auto& l : lines) seeds.push_back(l.substr(0, l.find('|')));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "duplicate seed field in corpus.txt";
}

}  // namespace
}  // namespace ccstarve
