// The canonical scenario registry moved to src/check/scenarios.hpp so the
// bench binaries and the fuzzer can share it; this shim keeps the historic
// include path working for the tests.
#pragma once

#include "check/scenarios.hpp"
