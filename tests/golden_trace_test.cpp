// Golden-trace regression suite.
//
// Every canonical scenario in tests/golden_scenarios.hpp is run with a
// TraceRecorder installed; the digest of its full packet event stream
// (send/enqueue/drop/deliver/receive/ack tuples with timestamps) must match
// the value committed in tests/golden/<name>.digest. The committed values
// were generated from the pre-optimisation event loop, so this suite proves
// the timer-wheel core is behaviourally bit-identical to the heap-based one.
//
// To regenerate after an INTENTIONAL behaviour change:
//   CCSTARVE_UPDATE_GOLDEN=1 ./tests/golden_trace_test
// and commit the updated tests/golden/*.digest files with an explanation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_scenarios.hpp"

#ifndef CCSTARVE_GOLDEN_DIR
#error "CCSTARVE_GOLDEN_DIR must point at tests/golden"
#endif

namespace ccstarve::golden {
namespace {

std::filesystem::path digest_path(const std::string& name) {
  return std::filesystem::path(CCSTARVE_GOLDEN_DIR) / (name + ".digest");
}

struct StoredDigest {
  std::string digest_hex;
  uint64_t records = 0;
};

std::optional<StoredDigest> read_digest(const std::string& name) {
  std::ifstream in(digest_path(name));
  if (!in) return std::nullopt;
  StoredDigest d;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream ls(line);
  std::string k1, k2;
  if (!(ls >> k1 >> k2)) return std::nullopt;
  if (k1.rfind("fnv1a64=", 0) != 0 || k2.rfind("records=", 0) != 0) {
    return std::nullopt;
  }
  d.digest_hex = k1.substr(8);
  d.records = std::stoull(k2.substr(8));
  return d;
}

void write_digest(const std::string& name, const GoldenResult& r) {
  std::filesystem::create_directories(CCSTARVE_GOLDEN_DIR);
  std::ofstream out(digest_path(name));
  out << "fnv1a64=" << r.digest_hex << " records=" << r.records << "\n";
}

bool update_mode() {
  const char* v = std::getenv("CCSTARVE_UPDATE_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

class GoldenTrace : public ::testing::TestWithParam<GoldenSpec> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenTrace, ::testing::ValuesIn(golden_specs()),
    [](const ::testing::TestParamInfo<GoldenSpec>& info) {
      return info.param.name;
    });

TEST_P(GoldenTrace, EventStreamMatchesCommittedDigest) {
  const GoldenSpec& spec = GetParam();
  // Every golden run doubles as an invariant check: the observer hooks add
  // no trace records, so the committed digests are unchanged.
  check::InvariantChecker ck;
  const GoldenResult got = run_golden_checked(spec, &ck);
  EXPECT_TRUE(ck.ok()) << spec.name << ":\n" << ck.report();
  ASSERT_GT(got.records, 100u)
      << spec.name << ": scenario produced almost no packet events; the "
      << "digest would not pin anything meaningful";

  if (update_mode()) {
    write_digest(spec.name, got);
    SUCCEED() << "updated " << digest_path(spec.name);
    return;
  }

  const auto want = read_digest(spec.name);
  ASSERT_TRUE(want.has_value())
      << "missing " << digest_path(spec.name)
      << "; generate with CCSTARVE_UPDATE_GOLDEN=1";
  EXPECT_EQ(got.digest_hex, want->digest_hex)
      << spec.name << ": packet event stream diverged from the committed "
      << "golden trace (" << got.records << " events vs " << want->records
      << " committed). If the behaviour change is intentional, regenerate "
      << "with CCSTARVE_UPDATE_GOLDEN=1 and justify it in the PR.";
  EXPECT_EQ(got.records, want->records) << spec.name;
}

// The digest machinery itself must be order- and value-sensitive: two
// different streams must (overwhelmingly) disagree, identical streams agree.
TEST(TraceRecorder, DigestIsOrderAndValueSensitive) {
  TraceRecorder a, b, c, d;
  a.record('S', TimeNs::millis(1), 0, 100, 0);
  a.record('E', TimeNs::millis(2), 0, 100, 1500);
  b.record('S', TimeNs::millis(1), 0, 100, 0);
  b.record('E', TimeNs::millis(2), 0, 100, 1500);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.records(), 2u);
  // Swapped order.
  c.record('E', TimeNs::millis(2), 0, 100, 1500);
  c.record('S', TimeNs::millis(1), 0, 100, 0);
  EXPECT_NE(a.digest(), c.digest());
  // One field off by one.
  d.record('S', TimeNs::millis(1), 0, 100, 0);
  d.record('E', TimeNs::millis(2), 0, 101, 1500);
  EXPECT_NE(a.digest(), d.digest());
}

// A run with the invariant observer attached must produce byte-for-byte
// the same event stream as a plain run: the observer is read-only.
TEST(GoldenTraceHarness, InvariantObserverDoesNotPerturbDigest) {
  GoldenSpec spec;
  spec.name = "observer_check";
  spec.flow_set = "copa:datajitter=uniform:3+vegas:loss=0.005";
  spec.duration_s = 2;
  const GoldenResult plain = run_golden(spec);
  check::InvariantChecker ck;
  const GoldenResult checked = run_golden_checked(spec, &ck);
  EXPECT_TRUE(ck.ok()) << ck.report();
  EXPECT_EQ(plain.digest_hex, checked.digest_hex);
  EXPECT_EQ(plain.records, checked.records);
  EXPECT_EQ(plain.events, checked.events);
}

// Two runs of the same spec in one process must agree (no hidden global
// state), which is also what makes the committed digests reproducible.
TEST(GoldenTraceHarness, RepeatedRunsAgree) {
  GoldenSpec spec;
  spec.name = "repeat_check";
  spec.flow_set = "copa+vegas";
  spec.duration_s = 2;
  const GoldenResult a = run_golden(spec);
  const GoldenResult b = run_golden(spec);
  EXPECT_EQ(a.digest_hex, b.digest_hex);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace ccstarve::golden
