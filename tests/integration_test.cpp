// Integration tests: the paper's experiments in miniature. Each test runs
// the same scenario shape as a §5 experiment or a theorem construction (at
// reduced scale so the suite stays fast) and asserts the *direction and
// rough factor* of the published result.
#include <gtest/gtest.h>

#include <memory>

#include "cc/allegro.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/jitter_aware.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"
#include "core/equilibrium.hpp"
#include "core/fairness.hpp"
#include "core/jitter_search.hpp"
#include "core/theorem1.hpp"
#include "core/theorem2.hpp"
#include "core/theorem3.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {
namespace {

// ---- §5.1: Copa min-RTT attack ----

Copa::Params attack_copa_params() {
  Copa::Params p;
  // The paper's analysis concerns Copa's delay-based default mode; its
  // min-RTT memory is "a long period" — longer than the experiment.
  p.enable_mode_switching = false;
  p.min_rtt_window = TimeNs::seconds(600);
  return p;
}

TEST(PaperExperiments, CopaSoloMinRttAttackSlashesThroughput) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<Copa>(attack_copa_params());
  f.min_rtt = TimeNs::millis(59);
  f.data_jitter = std::make_unique<AllButOneJitter>(TimeNs::millis(1),
                                                    TimeNs::millis(150));
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(30));
  // Paper: 8 Mbit/s of 120 (6.7%). One 1 ms-early packet caps Copa at
  // 1/(delta * 1ms) packets/s ~ 24 Mbit/s regardless of link rate.
  EXPECT_LT(sc.throughput(0, TimeNs::seconds(10), TimeNs::seconds(30))
                .to_mbps(),
            30.0);
}

TEST(PaperExperiments, CopaTwoFlowAttackStarvesVictim) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(120);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<Copa>(attack_copa_params());
    f.min_rtt = TimeNs::millis(59);
    if (i == 0) {
      f.data_jitter = std::make_unique<AllButOneJitter>(TimeNs::millis(1),
                                                        TimeNs::millis(150));
    } else {
      f.data_jitter = std::make_unique<ConstantJitter>(TimeNs::millis(1));
    }
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(40));
  const double victim =
      sc.throughput(0, TimeNs::seconds(15), TimeNs::seconds(40)).to_mbps();
  const double other =
      sc.throughput(1, TimeNs::seconds(15), TimeNs::seconds(40)).to_mbps();
  // Paper: 8.8 vs 95 Mbit/s.
  EXPECT_GT(other, 3.0 * victim);
  EXPECT_GT(other + victim, 90.0);  // link still near fully used
}

// ---- §5.2: BBR RTT starvation in cwnd-limited mode ----

TEST(PaperExperiments, BbrSmallRttFlowStarves) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(120);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    Bbr::Params p;
    p.seed = 7 + static_cast<uint64_t>(i);
    f.cca = std::make_unique<Bbr>(p);
    f.min_rtt = TimeNs::millis(i == 0 ? 40 : 80);
    f.ack_jitter = std::make_unique<UniformJitter>(
        TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  // Measure the converged half (the paper's 8.3-vs-107 averages include the
  // pre-collapse start; the steady-state contrast is what the theory pins).
  const double small_rtt =
      sc.throughput(0, TimeNs::seconds(30), TimeNs::seconds(60)).to_mbps();
  const double large_rtt =
      sc.throughput(1, TimeNs::seconds(30), TimeNs::seconds(60)).to_mbps();
  // Paper: 8.3 vs 107 (order of magnitude); the small-RTT flow starves.
  EXPECT_GT(large_rtt, 8.0 * small_rtt);
}

TEST(PaperExperiments, BbrCwndLimitedEquilibriumMatchesFixedPoint) {
  // §5.2's quantitative fixed point: with n flows in cwnd-limited mode the
  // RTT converges to 2*Rm + n*quanta/C. (The paper's quanta=0 corollary —
  // "any split is a fixed point" — is a fluid-analysis statement; our
  // packet-level dynamics add a fairness drift it abstracts away, see
  // EXPERIMENTS.md.)
  auto run = [](int n_flows) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(20);
    Scenario sc(std::move(cfg));
    for (int i = 0; i < n_flows; ++i) {
      FlowSpec f;
      Bbr::Params p;
      p.seed = 7 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Bbr>(p);
      f.min_rtt = TimeNs::millis(40);
      f.ack_jitter = std::make_unique<UniformJitter>(
          TimeNs::zero(), TimeNs::millis(3), 100 + static_cast<uint64_t>(i));
      sc.add_flow(std::move(f));
    }
    sc.run_until(TimeNs::seconds(60));
    return sc.stats(0).rtt_seconds.mean_over(TimeNs::seconds(30),
                                             TimeNs::seconds(60));
  };
  for (int n : {1, 2}) {
    const double predicted =
        bbr_cwnd_limited_rtt(Rate::mbps(20), TimeNs::millis(40), n, 3.0)
            .to_seconds();
    EXPECT_NEAR(run(n), predicted, 0.012) << n << " flows";
  }
}

// ---- §5.3: PCC Vivace with quantized ACK delivery ----

TEST(PaperExperiments, VivaceQuantizedAcksStarve) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(120);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    Vivace::Params p;
    p.seed = 3 + static_cast<uint64_t>(i);
    f.cca = std::make_unique<Vivace>(p);
    f.min_rtt = TimeNs::millis(60);
    if (i == 0) {
      f.ack_jitter =
          std::make_unique<PeriodicReleaseJitter>(TimeNs::millis(60));
    }
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  // Paper: 9.9 vs 99.4 Mbit/s.
  EXPECT_GT(sc.throughput(1).to_mbps(), 8.0 * sc.throughput(0).to_mbps());
}

// ---- §5.4: PCC Allegro with asymmetric random loss ----

TEST(PaperExperiments, AllegroAsymmetricLossStarvesAndControlsHold) {
  const Rate link = Rate::mbps(60);
  const uint64_t bdp = static_cast<uint64_t>(
      link.bytes_per_second() * 0.040);
  auto run = [&](double loss0, double loss1, int flows) {
    ScenarioConfig cfg;
    cfg.link_rate = link;
    cfg.buffer_bytes = bdp;
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (int i = 0; i < flows; ++i) {
      FlowSpec f;
      Allegro::Params p;
      p.seed = 5 + static_cast<uint64_t>(i);
      f.cca = std::make_unique<Allegro>(p);
      f.min_rtt = TimeNs::millis(40);
      f.loss_rate = i == 0 ? loss0 : loss1;
      f.loss_seed = 77 + static_cast<uint64_t>(i);
      sc->add_flow(std::move(f));
    }
    sc->run_until(TimeNs::seconds(60));
    return sc;
  };
  // Headline: one flow with 2% loss starves (paper: 10.3 vs 99.1; we match
  // the direction and a >3x factor — see EXPERIMENTS.md for the deviation
  // discussion on PCC-vs-PCC convergence).
  auto headline = run(0.02, 0.0, 2);
  EXPECT_GT(headline->throughput(1).to_mbps(),
            3.0 * headline->throughput(0).to_mbps());
  // Control: both with 2% loss still fill the link between them (the paper
  // additionally observed a fair split; our reimplementation shows a
  // winner-take-most PCC-vs-PCC artifact, documented in EXPERIMENTS.md).
  auto both = run(0.02, 0.02, 2);
  const double a = both->throughput(0).to_mbps();
  const double b = both->throughput(1).to_mbps();
  EXPECT_GT(a + b, 40.0);
}

// ---- Fig. 7: loss-based unfairness is bounded ----

TEST(PaperExperiments, DelayedAckUnfairnessIsBoundedForLossBased) {
  auto run = [](bool cubic) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(6);
    cfg.buffer_bytes = 60ull * kMss;
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      if (cubic) {
        f.cca = std::make_unique<Cubic>();
      } else {
        f.cca = std::make_unique<NewReno>();
      }
      f.min_rtt = TimeNs::millis(120);
      if (i == 0) f.ack_policy.ack_every = 4;  // delayed ACKs on one flow
      sc->add_flow(std::move(f));
    }
    sc->run_until(TimeNs::seconds(120));
    return sc;
  };
  for (bool cubic : {false, true}) {
    auto sc = run(cubic);
    const double bursty = sc->throughput(0).to_mbps();
    const double paced = sc->throughput(1).to_mbps();
    // Direction: the delayed-ACK (bursty) flow loses. Bound: unlike the
    // delay-convergent CCAs, the ratio stays small (paper: 2.7x / 3.2x).
    EXPECT_GT(paced, bursty * 0.9);
    EXPECT_LT(paced / bursty, 6.0);
    EXPECT_GT(paced + bursty, 4.5);  // still filling the link
  }
}

// ---- §6.1: the modified-BBR conjecture ----

TEST(PaperExperiments, HigherPacingBbrIsEfficientButStillUnfair) {
  // §6.1: raising BBR's pacing rate forces cwnd-limited mode; CCAC could
  // then find no under-utilization — but Theorem 1 says efficiency +
  // delay-convergence still cannot buy starvation-freedom. We check both
  // halves: the modified BBR stays efficient under the bounded adversary,
  // and the Rm-40/80 starvation persists.
  JitterSearchConfig search;
  search.link_rate = Rate::mbps(40);
  search.min_rtt = TimeNs::millis(50);
  search.d = TimeNs::millis(10);
  search.duration = TimeNs::seconds(40);
  search.f = 0.5;
  search.s = 1e9;  // efficiency check only
  search.random_schedules = 1;
  Bbr::Params mod;
  mod.cruise_gain = 1.1;
  const JitterSearchResult res = search_jitter_adversary(
      [mod] { return std::unique_ptr<Cca>(new Bbr(mod)); }, search);
  EXPECT_GT(res.worst_utilization, search.f);

  // Starvation persists with RTT asymmetry.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    Bbr::Params p = mod;
    p.seed = 7 + static_cast<uint64_t>(i);
    f.cca = std::make_unique<Bbr>(p);
    f.min_rtt = TimeNs::millis(i == 0 ? 40 : 80);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  const double small_rtt =
      sc.throughput(0, TimeNs::seconds(30), TimeNs::seconds(60)).to_mbps();
  const double large_rtt =
      sc.throughput(1, TimeNs::seconds(30), TimeNs::seconds(60)).to_mbps();
  EXPECT_GT(large_rtt, 4.0 * small_rtt);
}

// ---- Theorem 1 pipeline ----

TEST(Theorems, Theorem1ConstructionStarvesVegas) {
  PigeonholeConfig pg;
  pg.f = 0.9;
  pg.s = 8.0;
  pg.lambda = Rate::mbps(2);
  pg.max_steps = 3;
  pg.duration = TimeNs::seconds(40);
  EmulationConfig emu;
  emu.duration = TimeNs::seconds(20);
  const Theorem1Report rep = run_theorem1(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, pg, emu);
  ASSERT_TRUE(rep.pigeonhole.found);
  ASSERT_TRUE(rep.outcome.has_value());
  // The achieved ratio meets the requested s.
  EXPECT_GE(rep.outcome->ratio, pg.s * 0.9);
  // And the emulation stayed within the D = 2*delta_max + 2*eps budget.
  EXPECT_EQ(rep.outcome->slow_jitter.budget_violations, 0u);
  EXPECT_EQ(rep.outcome->fast_jitter.budget_violations, 0u);
  EXPECT_LE(rep.outcome->slow_jitter.max_added, rep.d_used);
}

TEST(Theorems, Theorem1ColdStartAlsoStarves) {
  PigeonholeConfig pg;
  pg.f = 0.9;
  pg.s = 8.0;
  pg.lambda = Rate::mbps(2);
  pg.max_steps = 3;
  pg.duration = TimeNs::seconds(40);
  PigeonholePair pair = find_rate_pair(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, pg);
  ASSERT_TRUE(pair.found);
  EmulationConfig emu;
  emu.duration = TimeNs::seconds(30);
  emu.transplant = false;
  emu.jitter_budget_d =
      TimeNs::seconds(2.0 * pair.delta_max_s + 2.0 * pg.epsilon_s);
  const EmulationOutcome out = emulate_two_flow(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, std::move(pair),
      emu);
  EXPECT_GE(out.ratio, 4.0);
}

// ---- Theorem 2 pipeline ----

TEST(Theorems, Theorem2DrivesUtilizationArbitrarilyLow) {
  Theorem2Config cfg;
  cfg.modest_rate = Rate::mbps(5);
  cfg.huge_rate = Rate::mbps(250);
  cfg.solo_duration = TimeNs::seconds(25);
  cfg.emu_duration = TimeNs::seconds(25);
  const Theorem2Outcome out = run_theorem2(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  EXPECT_LT(out.utilization, 0.05);
  EXPECT_NEAR(out.emulated_throughput_mbps, out.solo_throughput_mbps,
              0.3 * out.solo_throughput_mbps + 1.0);
}

TEST(Theorems, Theorem2ScalesWithLinkRate) {
  // Doubling C' halves utilization: the CCA is oblivious to the real link.
  auto run = [](double huge) {
    Theorem2Config cfg;
    cfg.modest_rate = Rate::mbps(5);
    cfg.huge_rate = Rate::mbps(huge);
    cfg.solo_duration = TimeNs::seconds(20);
    cfg.emu_duration = TimeNs::seconds(20);
    return run_theorem2(
        [] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  };
  const auto u100 = run(100).utilization;
  const auto u400 = run(400).utilization;
  EXPECT_NEAR(u100 / u400, 4.0, 1.0);
}

// ---- Theorem 3 pipeline ----

TEST(Theorems, Theorem3StrongModelStarvation) {
  Theorem3Config cfg;
  cfg.lambda = Rate::mbps(5);
  cfg.min_rtt = TimeNs::millis(50);
  cfg.duration = TimeNs::seconds(25);
  cfg.s = 4.0;
  const Theorem3Outcome out = run_theorem3(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  ASSERT_TRUE(out.found_pair);
  EXPECT_GE(out.ratio, cfg.s);
  EXPECT_GT(out.d, TimeNs::zero());
}

// ---- §6.3: the JitterAware CCA resists the bounded adversary ----

TEST(Theorems, JitterAwareSurvivesAdversarySearch) {
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.d = TimeNs::millis(10);  // the design-time jitter bound
  cfg.duration = TimeNs::seconds(60);
  cfg.f = 0.3;
  cfg.s = 5.0;  // > design s^2: tolerate amplification across two flows
  cfg.random_schedules = 2;
  JitterAware::Params p;  // defaults designed for D = 10 ms, Rm = 100 ms
  const JitterSearchResult res = search_jitter_adversary(
      [p] { return std::unique_ptr<Cca>(new JitterAware(p)); }, cfg);
  EXPECT_FALSE(res.any_violation)
      << "worst util " << res.worst_utilization << " worst ratio "
      << res.worst_ratio;
}

TEST(Theorems, VegasFailsTheSameAdversarySearch) {
  // The contrast that motivates §6: under the identical bounded adversary,
  // the maximally delay-convergent CCA is driven past the fairness bound.
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(60);
  cfg.min_rtt = TimeNs::millis(100);
  cfg.d = TimeNs::millis(10);
  cfg.duration = TimeNs::seconds(60);
  cfg.f = 0.3;
  cfg.s = 5.0;
  cfg.random_schedules = 2;
  const JitterSearchResult res = search_jitter_adversary(
      [] { return std::unique_ptr<Cca>(new Vegas()); }, cfg);
  EXPECT_TRUE(res.any_violation);
}

}  // namespace
}  // namespace ccstarve
