// Tests for the flow-telemetry subsystem (src/obs): the ring/aggregate
// building blocks, the starvation detector, and the three load-bearing
// guarantees of the probe itself —
//
//   * digest transparency: a telemetry-attached golden run reproduces every
//     committed trace digest byte-identically;
//   * fork equivalence: a probe attached to a forked Scenario records the
//     same post-fork series a probe attached to the cold run's continuation
//     records;
//   * report round-trip: the JSONL the probe emits parses back and the
//     ratio CSV's recomputed first crossing agrees with the probe's own
//     end-of-run verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "golden_scenarios.hpp"
#include "obs/aggregate.hpp"
#include "obs/report.hpp"
#include "obs/ring.hpp"
#include "obs/starvation.hpp"
#include "obs/telemetry.hpp"
#include "util/stats.hpp"

#ifndef CCSTARVE_GOLDEN_DIR
#error "CCSTARVE_GOLDEN_DIR must point at tests/golden"
#endif

using namespace ccstarve;
using namespace ccstarve::obs;

namespace {

// ---------------------------------------------------------------------------
// RingSeries

TEST(RingSeries, RetainsNewestAndCountsEvicted) {
  RingSeries r(4);
  for (int i = 0; i < 10; ++i) {
    r.push(TimeNs::millis(i), static_cast<double>(i));
  }
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.capacity(), 4u);
  EXPECT_EQ(r.total(), 10u);
  // Oldest retained is sample 6, newest is 9.
  EXPECT_EQ(r.at(0).at, TimeNs::millis(6));
  EXPECT_DOUBLE_EQ(r.at(0).value, 6.0);
  EXPECT_EQ(r.back().at, TimeNs::millis(9));
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 0; i + 1 < snap.size(); ++i) {
    EXPECT_LT(snap[i].at, snap[i + 1].at);
  }
}

TEST(RingSeries, EmptyAndZeroCapacity) {
  RingSeries r(0);  // clamped to 1
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), 1u);
  r.push(TimeNs::millis(1), 1.0);
  r.push(TimeNs::millis(2), 2.0);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.back().value, 2.0);
}

TEST(RingSeries, WraparoundKeepsExactTailAcrossManyLaps) {
  // Push far more samples than capacity with a capacity that does not
  // divide the total, so the head lands mid-buffer; at() must still walk
  // oldest-to-newest through the seam after every lap.
  RingSeries r(7);
  for (uint64_t i = 1; i <= 1000; ++i) {
    r.push(TimeNs::millis(static_cast<double>(i)), static_cast<double>(i));
    EXPECT_EQ(r.total(), i);
    EXPECT_EQ(r.size(), std::min<uint64_t>(i, 7));
    // The retained window is exactly the newest size() samples, in order.
    const uint64_t oldest = i - r.size() + 1;
    for (size_t k = 0; k < r.size(); ++k) {
      EXPECT_DOUBLE_EQ(r.at(k).value, static_cast<double>(oldest + k));
    }
    EXPECT_DOUBLE_EQ(r.back().value, static_cast<double>(i));
  }
  EXPECT_EQ(r.total() - r.size(), 993u);  // evicted count
}

// ---------------------------------------------------------------------------
// P2Quantile / StreamingAggregate

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile p50(0.5), p99(0.99);
  for (double x : {3.0, 1.0, 2.0}) {
    p50.add(x);
    p99.add(x);
  }
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);  // middle order statistic
  EXPECT_DOUBLE_EQ(p99.value(), 3.0);  // capped at the max
  EXPECT_EQ(p50.count(), 3u);
}

TEST(P2Quantile, TracksOfflinePercentilesOnUniformStream) {
  // Deterministic LCG stream in [0, 100).
  uint64_t s = 12345;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((s >> 33) % 100000) / 1000.0;
  };
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 5000; ++i) {
    const double x = next();
    all.push_back(x);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), percentile(all, 50), 2.0);
  EXPECT_NEAR(p90.value(), percentile(all, 90), 2.0);
  EXPECT_NEAR(p99.value(), percentile(all, 99), 2.0);
}

TEST(StreamingAggregate, MatchesClosedFormOnKnownData) {
  StreamingAggregate a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);

  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_GE(a.p50(), a.min());
  EXPECT_LE(a.p50(), a.max());
  EXPECT_LE(a.p50(), a.p90());
  EXPECT_LE(a.p90(), a.p99());
}

TEST(StreamingAggregate, P2StaysAccurateOnVeryLongRuns) {
  // A long-horizon serve job pushes millions of samples through one
  // aggregate; the P² markers must not drift. Deterministic LCG uniform
  // on [0, 1): exact quantiles are the probabilities themselves.
  StreamingAggregate a;
  uint64_t s = 99;
  for (int i = 0; i < 2'000'000; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    a.add(static_cast<double>(s >> 11) / 9007199254740992.0);  // 53-bit
  }
  EXPECT_EQ(a.count(), 2'000'000u);
  EXPECT_NEAR(a.mean(), 0.5, 1e-3);
  EXPECT_NEAR(a.variance(), 1.0 / 12.0, 1e-3);
  EXPECT_NEAR(a.p50(), 0.50, 5e-3);
  EXPECT_NEAR(a.p90(), 0.90, 5e-3);
  EXPECT_NEAR(a.p99(), 0.99, 5e-3);
  EXPECT_GE(a.min(), 0.0);
  EXPECT_LT(a.max(), 1.0);
}

TEST(StreamingAggregate, P2TracksDistributionShiftMidRun) {
  // The estimator keeps converging when the distribution changes — the
  // live-telemetry case where a flow's RTT regime shifts mid-experiment.
  StreamingAggregate a;
  uint64_t s = 7;
  auto uniform = [&s](double lo, double hi) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return lo + (hi - lo) * static_cast<double>(s >> 11) / 9007199254740992.0;
  };
  for (int i = 0; i < 500'000; ++i) a.add(uniform(0.0, 1.0));
  for (int i = 0; i < 1'500'000; ++i) a.add(uniform(10.0, 11.0));
  // Overall: 25% of mass on [0,1), 75% on [10,11), so the true p50/p90/p99
  // all sit inside the second mode. P² adapts with some lag on
  // non-stationary input, so the bound is membership in the new mode (the
  // markers migrated), not tight convergence.
  EXPECT_GT(a.p50(), 10.0);
  EXPECT_LT(a.p50(), 11.0);
  EXPECT_GT(a.p90(), 10.5);
  EXPECT_LT(a.p90(), 11.0);
  EXPECT_GT(a.p99(), 10.8);
  EXPECT_NEAR(a.mean(), 0.25 * 0.5 + 0.75 * 10.5, 0.02);
}

// ---------------------------------------------------------------------------
// StarvationDetector

TEST(StarvationDetector, EngagesAfterFullWindowAndDetectsWorstPair) {
  StarvationDetector d;
  d.configure(/*flows=*/2, /*window_buckets=*/4, /*threshold=*/2.0,
              /*ring_capacity=*/64);
  std::vector<bool> started = {true, true};

  // Equal halves: never crosses.
  TimeNs t = TimeNs::zero();
  for (int i = 0; i < 4; ++i) {
    t = t + TimeNs::millis(10);
    d.on_bucket(t, {1000, 1000}, started);
  }
  EXPECT_TRUE(d.engaged());
  EXPECT_DOUBLE_EQ(d.last_ratio(), 1.0);
  EXPECT_TRUE(d.crossings().empty());
  EXPECT_EQ(d.first_crossing(), TimeNs(-1));

  // Flow 1 collapses to a quarter of flow 0: after the window slides far
  // enough the ratio crosses 2 and the crossing is recorded exactly once.
  TimeNs crossing_seen = TimeNs(-1);
  for (int i = 0; i < 8; ++i) {
    t = t + TimeNs::millis(10);
    d.on_bucket(t, {1000, 250}, started);
    if (crossing_seen == TimeNs(-1) && !d.crossings().empty()) {
      crossing_seen = d.first_crossing();
    }
  }
  EXPECT_GT(d.last_ratio(), 2.0);
  ASSERT_EQ(d.crossings().size(), 1u);
  EXPECT_EQ(d.crossings().front().a, 0u);  // flow 0 is the faster one
  EXPECT_EQ(d.crossings().front().b, 1u);
  EXPECT_EQ(d.first_crossing(), crossing_seen);
  // The timeline has one point per engaged bucket, in time order.
  const auto tl = d.timeline().snapshot();
  ASSERT_GE(tl.size(), 2u);
  for (size_t i = 0; i + 1 < tl.size(); ++i) {
    EXPECT_LT(tl[i].at, tl[i + 1].at);
  }
}

TEST(StarvationDetector, ZeroDeliveryCapsRatioAndPreStartFlowsExcluded) {
  StarvationDetector d;
  d.configure(2, 2, 2.0, 16);
  // Flow 1 not started: detector must not engage (no false starvation for
  // a flow that simply has not begun).
  TimeNs t = TimeNs::millis(10);
  d.on_bucket(t, {1000, 0}, {true, false});
  t = t + TimeNs::millis(10);
  d.on_bucket(t, {1000, 0}, {true, false});
  EXPECT_FALSE(d.engaged());

  // Both started, one fully silent: ratio caps instead of dividing by zero.
  for (int i = 0; i < 4; ++i) {
    t = t + TimeNs::millis(10);
    d.on_bucket(t, {1000, 0}, {true, true});
  }
  EXPECT_TRUE(d.engaged());
  EXPECT_DOUBLE_EQ(d.last_ratio(), StarvationDetector::kStarvedRatioCap);
  ASSERT_FALSE(d.crossings().empty());
}

// Above pair_cap the detector switches to a deterministic pair sample and
// starved_pair_fraction() becomes an estimator. At the distribution's
// extremes the estimator is exact regardless of which pairs were drawn, so
// sampled and exhaustive detectors must agree bit-for-bit there.
TEST(StarvationDetector, SampledFractionAgreesWithExhaustiveAtExtremes) {
  constexpr size_t kFlows = 64;  // 2016 pairs
  StarvationDetector exhaustive;
  StarvationDetector sampled;
  exhaustive.configure(kFlows, 2, 2.0, 16, /*pair_cap=*/4096);
  sampled.configure(kFlows, 2, 2.0, 16, /*pair_cap=*/256);

  EXPECT_FALSE(exhaustive.sampled());
  EXPECT_EQ(exhaustive.tracked_pair_count(), kFlows * (kFlows - 1) / 2);
  EXPECT_TRUE(sampled.sampled());
  EXPECT_EQ(sampled.tracked_pair_count(), 256u);

  const std::vector<bool> started(kFlows, true);

  // Equal deltas: no pair ever crosses — fraction exactly 0 in both modes.
  std::vector<uint64_t> equal(kFlows, 1000);
  TimeNs t = TimeNs::zero();
  for (int i = 0; i < 6; ++i) {
    t = t + TimeNs::millis(10);
    exhaustive.on_bucket(t, equal, started);
    sampled.on_bucket(t, equal, started);
  }
  EXPECT_TRUE(exhaustive.engaged());
  EXPECT_TRUE(sampled.engaged());
  EXPECT_DOUBLE_EQ(exhaustive.starved_pair_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(sampled.starved_pair_fraction(), 0.0);

  // Geometric deltas 2^i: every pair's ratio is >= 2, so every tracked
  // pair crosses — fraction exactly 1 in both modes, and the sampled
  // detector records exactly its tracked-pair count of crossings.
  std::vector<uint64_t> geometric(kFlows);
  for (size_t i = 0; i < kFlows; ++i) {
    geometric[i] = uint64_t{1} << i;
  }
  for (int i = 0; i < 6; ++i) {
    t = t + TimeNs::millis(10);
    exhaustive.on_bucket(t, geometric, started);
    sampled.on_bucket(t, geometric, started);
  }
  EXPECT_DOUBLE_EQ(exhaustive.starved_pair_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(sampled.starved_pair_fraction(), 1.0);
  EXPECT_EQ(exhaustive.crossings().size(), kFlows * (kFlows - 1) / 2);
  EXPECT_EQ(sampled.crossings().size(), 256u);
}

// ---------------------------------------------------------------------------
// Digest transparency against every committed golden digest.

std::optional<std::string> committed_digest(const std::string& name) {
  std::ifstream in(std::string(CCSTARVE_GOLDEN_DIR) + "/" + name + ".digest");
  if (!in) return std::nullopt;
  std::string k1, k2;
  if (!(in >> k1 >> k2) || k1.rfind("fnv1a64=", 0) != 0) return std::nullopt;
  return k1.substr(8);
}

class GoldenTelemetry : public ::testing::TestWithParam<golden::GoldenSpec> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenTelemetry, ::testing::ValuesIn(golden::golden_specs()),
    [](const ::testing::TestParamInfo<golden::GoldenSpec>& info) {
      return info.param.name;
    });

TEST_P(GoldenTelemetry, AttachedProbeLeavesCommittedDigestIntact) {
  const golden::GoldenSpec& spec = GetParam();
  const auto want = committed_digest(spec.name);
  ASSERT_TRUE(want.has_value())
      << "missing committed digest for " << spec.name;

  std::ostringstream jsonl;
  TelemetryConfig cfg;
  cfg.jsonl = &jsonl;  // exercise the serializing path too
  FlowTelemetry telemetry(std::move(cfg));
  const golden::GoldenResult got =
      golden::run_golden_telemetry(spec, &telemetry);

  EXPECT_EQ(got.digest_hex, *want)
      << spec.name << ": attaching the telemetry probe changed the packet "
      << "event stream — the probe must be observation-only";
  EXPECT_GT(telemetry.buckets_closed(), 0u);
  EXPECT_FALSE(jsonl.str().empty());
}

// ---------------------------------------------------------------------------
// Fork equivalence: attach-to-a-fork records the cold run's series.

TEST(FlowTelemetry, ForkAttachedSeriesMatchesColdAttached) {
  golden::GoldenSpec spec;
  for (const auto& s : golden::golden_specs()) {
    if (s.name == "copa_late_step") spec = s;
  }
  ASSERT_EQ(spec.name, "copa_late_step");
  // The prefix-sharing fork point for a step:8,5 jitter axis.
  const TimeNs mid = TimeNs::seconds(5) - TimeNs::nanos(1);
  const TimeNs end = TimeNs::seconds(spec.duration_s);

  // Cold: one uninterrupted scenario, probe attached mid-run.
  auto cold = golden::build_golden(spec);
  cold->run_until(mid);
  FlowTelemetry cold_probe{TelemetryConfig{}};
  cold_probe.attach(*cold);
  cold->run_until(end);
  cold_probe.finish(end);

  // Forked: same prefix, snapshotted and restored, probe attached to the
  // fork at the same instant.
  auto stem = golden::build_golden(spec);
  stem->run_until(mid);
  const ScenarioSnapshot snap = stem->snapshot();
  auto forked = Scenario::fork(snap);
  FlowTelemetry fork_probe{TelemetryConfig{}};
  fork_probe.attach(*forked);
  forked->run_until(end);
  fork_probe.finish(end);

  ASSERT_EQ(cold_probe.flow_count(), fork_probe.flow_count());
  EXPECT_EQ(cold_probe.buckets_closed(), fork_probe.buckets_closed());
  for (size_t f = 0; f < cold_probe.flow_count(); ++f) {
    const auto& a = cold_probe.flow(f);
    const auto& b = fork_probe.flow(f);
    EXPECT_EQ(a.sent_bytes, b.sent_bytes) << "flow " << f;
    EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << "flow " << f;
    const RingSeries* series_a[] = {&a.send_mbps, &a.deliver_mbps, &a.rtt_ms,
                                    &a.cwnd_bytes};
    const RingSeries* series_b[] = {&b.send_mbps, &b.deliver_mbps, &b.rtt_ms,
                                    &b.cwnd_bytes};
    const char* names[] = {"send", "deliver", "rtt", "cwnd"};
    for (int k = 0; k < 4; ++k) {
      const auto sa = series_a[k]->snapshot();
      const auto sb = series_b[k]->snapshot();
      ASSERT_EQ(sa.size(), sb.size()) << names[k] << " flow " << f;
      for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].at, sb[i].at) << names[k] << " flow " << f;
        EXPECT_DOUBLE_EQ(sa[i].value, sb[i].value)
            << names[k] << " flow " << f << " bucket " << i;
      }
    }
  }
  // Starvation timelines (and any crossings) must agree too.
  const auto ta = cold_probe.starvation().timeline().snapshot();
  const auto tb = fork_probe.starvation().timeline().snapshot();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_DOUBLE_EQ(ta[i].value, tb[i].value);
  }
  EXPECT_EQ(cold_probe.starvation().first_crossing(),
            fork_probe.starvation().first_crossing());
}

// ---------------------------------------------------------------------------
// TelemetrySink interchangeability

// The guarantee the serve subsystem's live streaming stands on: the line
// sequence a probe emits is identical whichever sink receives it. Runs the
// same golden scenario through the historical jsonl-ostream path and
// through a TeeSink fanning out to an OstreamSink and a MemorySink, and
// requires all three captures byte-equal.
TEST(TelemetrySink, OstreamMemoryAndTeeObserveIdenticalLineSequences) {
  golden::GoldenSpec spec = golden::golden_specs().front();
  const TimeNs end = TimeNs::seconds(spec.duration_s);

  auto lines_of = [](const std::string& text) {
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string l;
    while (std::getline(is, l)) out.push_back(l);
    return out;
  };

  // Historical path: config.jsonl (FlowTelemetry owns an OstreamSink).
  std::ostringstream via_jsonl;
  {
    auto sc = golden::build_golden(spec);
    TelemetryConfig tc;
    tc.jsonl = &via_jsonl;
    FlowTelemetry probe{std::move(tc)};
    probe.attach(*sc);
    sc->run_until(end);
    probe.finish(end);
  }

  // Sink path: one run, fanned out to two sink types at once.
  std::ostringstream via_tee;
  MemorySink memory(1u << 20);
  {
    auto sc = golden::build_golden(spec);
    OstreamSink ostream_sink(via_tee);
    TeeSink tee;
    tee.add(&ostream_sink);
    tee.add(&memory);
    TelemetryConfig tc;
    tc.sink = &tee;
    FlowTelemetry probe{std::move(tc)};
    probe.attach(*sc);
    sc->run_until(end);
    probe.finish(end);
  }

  const auto a = lines_of(via_jsonl.str());
  const auto b = lines_of(via_tee.str());
  const auto c = memory.snapshot();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(memory.evicted(), 0u);
}

// ---------------------------------------------------------------------------
// JSONL -> TelemetryLog -> CSV round trip.

TEST(Report, TelemetryRoundTripAndCrossingAgreement) {
  golden::GoldenSpec spec;
  for (const auto& s : golden::golden_specs()) {
    if (s.name == "copa_minrtt_attack") spec = s;
  }
  ASSERT_EQ(spec.name, "copa_minrtt_attack");

  std::ostringstream jsonl;
  TelemetryConfig cfg;
  cfg.jsonl = &jsonl;
  cfg.flow_labels = {"copa-default", "copa-default"};
  FlowTelemetry telemetry(std::move(cfg));
  golden::run_golden_telemetry(spec, &telemetry);

  std::istringstream in(jsonl.str());
  const auto log = TelemetryLog::read(in);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->flows, 2u);
  EXPECT_DOUBLE_EQ(log->interval_ms, 10.0);
  ASSERT_EQ(log->labels.size(), 2u);
  EXPECT_EQ(log->labels[0], "copa-default");
  EXPECT_EQ(log->samples.size(), telemetry.buckets_closed() * 2);
  EXPECT_EQ(log->link.size(), telemetry.buckets_closed());
  EXPECT_TRUE(log->end.present);
  ASSERT_EQ(log->flow_summaries.size(), 2u);
  for (const auto& fsum : log->flow_summaries) {
    EXPECT_GT(fsum.sent_bytes, 0.0);
    EXPECT_GT(fsum.rtt_ms.n, 0.0);
    EXPECT_LE(fsum.rtt_ms.p50, fsum.rtt_ms.p99);
  }

  // The ratio CSV recomputes the first crossing from the timeline; it must
  // tell the same story as the probe's end-of-run verdict.
  std::ostringstream ratio_csv;
  write_ratio_csv(ratio_csv, *log);
  EXPECT_NE(ratio_csv.str().find("# agree=1"), std::string::npos)
      << ratio_csv.str();

  std::ostringstream timeline_csv;
  write_timeline_csv(timeline_csv, *log);
  // Comment + header + one row per bucket.
  size_t lines = 0;
  std::istringstream tl(timeline_csv.str());
  for (std::string l; std::getline(tl, l);) ++lines;
  EXPECT_EQ(lines, 2 + telemetry.buckets_closed());

  std::ostringstream dist_csv;
  write_delay_dist_csv(dist_csv, *log);
  EXPECT_NE(dist_csv.str().find("rtt_ms"), std::string::npos);

  std::istringstream sniff(jsonl.str());
  EXPECT_EQ(detect_input_kind(sniff), "telemetry");
}

TEST(Report, DetectsSweepInputAndWritesRateDelayRows) {
  // A minimal hand-rolled sweep record line (field subset is enough for the
  // tolerant reader).
  const std::string sweep_line =
      "{\"key\":\"flows=copa+vegas|link=60\",\"ccas\":[\"copa\",\"vegas\"],"
      "\"throughput_mbps\":[30.5,25.25],\"mean_rtt_ms\":[61.5,63.0],"
      "\"d_min_ms\":[60.0,60.1],\"d_max_ms\":[70.0,71.0]}\n";
  std::istringstream sniff(sweep_line);
  EXPECT_EQ(detect_input_kind(sniff), "sweep");

  std::istringstream in(sweep_line);
  std::ostringstream csv;
  ASSERT_TRUE(write_rate_delay_csv(csv, in));
  // One row per flow plus the header.
  EXPECT_NE(csv.str().find("copa"), std::string::npos);
  EXPECT_NE(csv.str().find("30.5"), std::string::npos);
  EXPECT_NE(csv.str().find("vegas"), std::string::npos);

  std::istringstream junk("not json\n");
  EXPECT_EQ(detect_input_kind(junk), "unknown");
}

TEST(Report, ReadRejectsNonTelemetryInput) {
  std::istringstream in("{\"type\":\"sample\",\"t_s\":1}\n");
  EXPECT_FALSE(TelemetryLog::read(in).has_value());  // no meta line
}

// ---------------------------------------------------------------------------
// Starvation classification: receiver-limited vs congestion-limited.

// A zero-window stall: flow 0's receiver drains at 2 Mbps behind a
// 16-packet buffer while flow 1 runs unconstrained, so flow 0 spends
// nearly the whole run rwnd-blocked and starves. The end-of-run verdict
// must blame the receiver, not the network.
TEST(StarvationKind, ZeroWindowStallClassifiesReceiverLimited) {
  golden::GoldenSpec spec;
  spec.name = "rwnd_stall_classify";
  spec.flow_set = "newreno:rwnd=16:drain=0.1+newreno";
  spec.link_mbps = 48;
  spec.rtt_ms = 40;
  spec.buffer = "2bdp";
  spec.duration_s = 8;

  std::ostringstream jsonl;
  TelemetryConfig cfg;
  cfg.jsonl = &jsonl;
  cfg.flow_labels = {"newreno:rwnd", "newreno"};
  FlowTelemetry telemetry(std::move(cfg));
  golden::run_golden_telemetry(spec, &telemetry);

  std::istringstream in(jsonl.str());
  const auto log = TelemetryLog::read(in);
  ASSERT_TRUE(log.has_value());
  ASSERT_TRUE(log->end.present);
  EXPECT_NE(log->end.starved, 0.0);
  EXPECT_EQ(log->end.starved_kind, "receiver-limited");
  EXPECT_DOUBLE_EQ(log->end.starved_flow, 0.0);
  ASSERT_EQ(log->flow_summaries.size(), 2u);
  EXPECT_GE(log->flow_summaries[0].rwnd_limited_frac, 0.5);
  EXPECT_DOUBLE_EQ(log->flow_summaries[1].rwnd_limited_frac, 0.0);
}

// The paper's §5.1 Copa min-RTT attack starves the non-jittered flow with
// no receiver in the loop at all: the same classifier must call it
// congestion-limited with every rwnd fraction at zero.
TEST(StarvationKind, CopaMinRttAttackClassifiesCongestionLimited) {
  // The full-strength §5.1 parameters (the registered copa_minrtt_attack
  // golden uses a milder jitter split whose end-of-run ratio sits just
  // under the starvation threshold): one flow sees 1 ms-early delivery on
  // all but a 0.15 fraction of packets, the victim a constant 1 ms.
  golden::GoldenSpec spec;
  spec.name = "copa_minrtt_attack_full";
  spec.flow_set =
      "copa-default:rtt=59:datajitter=allbutone:1,0.15"
      "+copa-default:rtt=59:datajitter=const:1";
  spec.link_mbps = 120;
  spec.rtt_ms = 60;
  spec.duration_s = 8;

  std::ostringstream jsonl;
  TelemetryConfig cfg;
  cfg.jsonl = &jsonl;
  FlowTelemetry telemetry(std::move(cfg));
  golden::run_golden_telemetry(spec, &telemetry);

  std::istringstream in(jsonl.str());
  const auto log = TelemetryLog::read(in);
  ASSERT_TRUE(log.has_value());
  ASSERT_TRUE(log->end.present);
  EXPECT_NE(log->end.starved, 0.0);
  EXPECT_EQ(log->end.starved_kind, "congestion-limited");
  for (const auto& fsum : log->flow_summaries) {
    EXPECT_DOUBLE_EQ(fsum.rwnd_limited_frac, 0.0) << "flow " << fsum.flow;
  }
}

// Pair-tracking agreement on an rwnd cohort: 16 receiver-limited flows
// against 16 unconstrained ones cross for exactly the limited x unlimited
// pairs. The exhaustive and the deterministically sampled detector modes
// must agree on the verdict and (within sampling error) on the starved
// pair fraction.
TEST(StarvationKind, SampledAndExhaustivePairModesAgreeOnRwndCohort) {
  golden::GoldenSpec spec;
  spec.name = "rwnd_cohort_sampling";
  spec.flow_set = "copa:rwnd=16:drain=1*16+copa*16";
  spec.link_mbps = 64;
  spec.rtt_ms = 40;
  spec.buffer = "2bdp";
  spec.duration_s = 4;

  struct Outcome {
    bool sampled = false;
    double fraction = 0;
    bool crossed = false;
  };
  auto run_with_cap = [&](size_t cap) {
    TelemetryConfig cfg;
    cfg.starvation_pair_cap = cap;
    FlowTelemetry tm(std::move(cfg));
    golden::run_golden_telemetry(spec, &tm);
    return Outcome{tm.starvation().sampled(),
                   tm.starvation().starved_pair_fraction(),
                   tm.starvation().first_crossing() != TimeNs(-1)};
  };

  const Outcome exhaustive = run_with_cap(4096);  // 496 pairs: all tracked
  const Outcome sampled = run_with_cap(128);
  EXPECT_FALSE(exhaustive.sampled);
  EXPECT_TRUE(sampled.sampled);
  EXPECT_TRUE(exhaustive.crossed);
  EXPECT_EQ(exhaustive.crossed, sampled.crossed);
  EXPECT_NEAR(sampled.fraction, exhaustive.fraction, 0.15);
}

}  // namespace
