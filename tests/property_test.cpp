// Property-based tests: invariants that must hold for every CCA, every
// seed, and every jitter schedule — checked with parameterized sweeps.
//
//   * conservation: a flow can never deliver more than the link can carry;
//   * ordering: no component reorders packets within a flow;
//   * determinism: identical configurations produce identical byte counts;
//   * jitter budgets: every bounded policy stays within [0, D];
//   * symmetry: identical flows end up within a bounded throughput ratio;
//   * RTT sanity: no measured RTT below the propagation delay.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/allegro.hpp"
#include "check/invariants.hpp"
#include "check/scenarios.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/fast.hpp"
#include "cc/jitter_aware.hpp"
#include "cc/misc.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/verus.hpp"
#include "cc/vivace.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_probe.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve {
namespace {

struct CcaCase {
  std::string name;
  std::function<std::unique_ptr<Cca>()> make;
  // Loss-based CCAs need a finite buffer to behave.
  bool needs_finite_buffer;
  // Minimum acceptable ratio bound for two identical flows.
  double symmetry_bound;
};

std::vector<CcaCase> all_ccas() {
  return {
      {"vegas", [] { return std::unique_ptr<Cca>(new Vegas()); }, false, 2.0},
      {"fast", [] { return std::unique_ptr<Cca>(new FastTcp()); }, false, 2.0},
      {"copa", [] { return std::unique_ptr<Cca>(new Copa()); }, false, 2.5},
      {"bbr", [] { return std::unique_ptr<Cca>(new Bbr()); }, false, 6.0},
      {"vivace", [] { return std::unique_ptr<Cca>(new Vivace()); }, false,
       3.5},
      {"allegro", [] { return std::unique_ptr<Cca>(new Allegro()); }, true,
       6.0},
      {"newreno", [] { return std::unique_ptr<Cca>(new NewReno()); }, true,
       2.5},
      {"cubic", [] { return std::unique_ptr<Cca>(new Cubic()); }, true, 2.5},
      {"delay-aimd", [] { return std::unique_ptr<Cca>(new DelayAimd()); },
       false, 2.5},
      {"jitter-aware",
       [] { return std::unique_ptr<Cca>(new JitterAware()); }, false, 2.5},
      // Verus-vs-Verus sharing is weak (each learns its own delay profile
      // against the other's standing queue); sanity bound only.
      {"verus", [] { return std::unique_ptr<Cca>(new Verus()); }, false, 12.0},
      {"const-cwnd", [] { return std::unique_ptr<Cca>(new ConstCwnd(50)); },
       false, 1.5},
  };
}

class PerCca : public ::testing::TestWithParam<CcaCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllCcas, PerCca, ::testing::ValuesIn(all_ccas()),
    [](const ::testing::TestParamInfo<CcaCase>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

constexpr double kLinkMbps = 12.0;
constexpr double kDurationS = 25.0;

// Run a scenario to `until` with the runtime invariant observer attached
// (FIFO, conservation, jitter bounds, CCA sanity); any violation fails the
// surrounding test. The observer is detached before returning so the
// checker can go out of scope while the scenario lives on.
void run_checked(Scenario& sc, TimeNs until, const std::string& label) {
  check::InvariantChecker ck;
  ck.attach(sc);
  sc.run_until(until);
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << label << ":\n" << ck.report();
  sc.sim().set_checker(nullptr);
}

ScenarioConfig base_config(const CcaCase& c) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(kLinkMbps);
  if (c.needs_finite_buffer) {
    // ~1.5 BDP at 60 ms.
    cfg.buffer_bytes = static_cast<uint64_t>(
        1.5 * Rate::mbps(kLinkMbps).bytes_per_second() * 0.060);
  }
  return cfg;
}

// --- Conservation: delivered bytes never exceed link capacity * time. ---
TEST_P(PerCca, NeverDeliversMoreThanTheLinkCarries) {
  const CcaCase& c = GetParam();
  Scenario sc(base_config(c));
  FlowSpec f;
  f.cca = c.make();
  f.min_rtt = TimeNs::millis(60);
  sc.add_flow(std::move(f));
  run_checked(sc, TimeNs::seconds(kDurationS), c.name);
  const double max_bytes =
      Rate::mbps(kLinkMbps).bytes_per_second() * kDurationS;
  EXPECT_LE(static_cast<double>(sc.sender(0).delivered_bytes()),
            max_bytes * 1.001);
}

// --- Determinism: identical runs give identical outcomes. ---
TEST_P(PerCca, RunsAreDeterministic) {
  const CcaCase& c = GetParam();
  auto run_once = [&] {
    Scenario sc(base_config(c));
    FlowSpec f;
    f.cca = c.make();
    f.min_rtt = TimeNs::millis(60);
    f.data_jitter = std::make_unique<UniformJitter>(
        TimeNs::zero(), TimeNs::millis(5), 42);
    sc.add_flow(std::move(f));
    run_checked(sc, TimeNs::seconds(10), c.name);
    return std::pair(sc.sender(0).delivered_bytes(),
                     sc.sim().events_processed());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- RTT sanity: no sample below the propagation floor. ---
TEST_P(PerCca, RttNeverBelowPropagation) {
  const CcaCase& c = GetParam();
  Scenario sc(base_config(c));
  FlowSpec f;
  f.cca = c.make();
  f.min_rtt = TimeNs::millis(60);
  sc.add_flow(std::move(f));
  run_checked(sc, TimeNs::seconds(kDurationS), c.name);
  for (const auto& s : sc.stats(0).rtt_seconds.samples()) {
    ASSERT_GE(s.value, 0.060);
  }
}

// --- Symmetry: two identical flows share within a bounded ratio. ---
TEST_P(PerCca, IdenticalFlowsShareWithinBound) {
  const CcaCase& c = GetParam();
  Scenario sc(base_config(c));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = c.make();
    f.min_rtt = TimeNs::millis(60);
    f.start_at = TimeNs::millis(i * 200);  // slight stagger
    sc.add_flow(std::move(f));
  }
  run_checked(sc, TimeNs::seconds(kDurationS), c.name);
  const double a = sc.throughput(0, TimeNs::seconds(kDurationS / 2),
                                 TimeNs::seconds(kDurationS))
                       .to_mbps();
  const double b = sc.throughput(1, TimeNs::seconds(kDurationS / 2),
                                 TimeNs::seconds(kDurationS))
                       .to_mbps();
  ASSERT_GT(std::min(a, b), 0.0);
  EXPECT_LT(std::max(a, b) / std::min(a, b), c.symmetry_bound)
      << c.name << ": " << a << " vs " << b;
}

// --- Transplant: a converged CCA moved onto a fresh identical path (the
// Theorem 1 state-transplant machinery) keeps performing. ---
TEST_P(PerCca, TransplantedCcaStaysEffective) {
  const CcaCase& c = GetParam();
  Scenario first(base_config(c));
  FlowSpec f1;
  f1.cca = c.make();
  f1.min_rtt = TimeNs::millis(60);
  first.add_flow(std::move(f1));
  run_checked(first, TimeNs::seconds(20), c.name + " (first)");
  const double before = first
                            .throughput(0, TimeNs::seconds(10),
                                        TimeNs::seconds(20))
                            .to_mbps();

  auto cca = first.sender(0).take_cca();
  cca->rebase_time(TimeNs::zero() - TimeNs::seconds(20));

  Scenario second(base_config(c));
  FlowSpec f2;
  f2.cca = std::move(cca);
  f2.min_rtt = TimeNs::millis(60);
  second.add_flow(std::move(f2));
  run_checked(second, TimeNs::seconds(15), c.name + " (transplanted)");
  const double after = second
                           .throughput(0, TimeNs::seconds(5),
                                       TimeNs::seconds(15))
                           .to_mbps();
  EXPECT_GT(after, 0.4 * before) << c.name << ": " << before << " -> "
                                 << after;
}

// --- Fork equivalence: for every registered CCA, a continuation forked
// from a mid-run snapshot dispatches exactly the packet events of the
// uninterrupted run (DESIGN.md §8). Loss and data jitter are on so the
// snapshot covers retransmission, RTO, RNG, and jitter-box state. ---
class ForkEquivalence : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllRegisteredCcas, ForkEquivalence,
                         ::testing::ValuesIn(sweep::cca_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(ForkEquivalence, SnapshotForkMatchesColdDigest) {
  const std::string& name = GetParam();
  const TimeNs duration = TimeNs::seconds(12);
  // Snapshot point pseudo-randomized per CCA (FNV-1a of the name) so each
  // algorithm is cut at a different, unaligned mid-run time in
  // [0.2, 0.8] x duration.
  uint64_t h = 1469598103934665603ull;
  for (const char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  const TimeNs t =
      duration * (0.2 + 0.6 * static_cast<double>(h % 1000) / 1000.0);

  auto build = [&] {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(16);
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    FlowSpec f;
    f.cca = sweep::make_cca(name, 11);
    f.min_rtt = TimeNs::millis(40);
    f.loss_rate = 0.01;
    f.loss_seed = 5;
    f.data_jitter = std::make_unique<UniformJitter>(TimeNs::zero(),
                                                    TimeNs::millis(3), 7);
    sc->add_flow(std::move(f));
    return sc;
  };

  TraceRecorder cold;
  {
    auto sc = build();
    check::InvariantChecker ck;
    ck.attach(*sc);
    sc->sim().set_tracer(&cold);
    sc->run_until(duration);
    ck.checkpoint();
    EXPECT_TRUE(ck.ok()) << name << " (cold):\n" << ck.report();
  }

  TraceRecorder forked;
  ScenarioSnapshot snap;
  {
    auto sc = build();
    sc->sim().set_tracer(&forked);
    sc->run_until(t);
    snap = sc->snapshot();
  }
  auto fk = Scenario::fork(snap);
  check::InvariantChecker fork_ck;
  fork_ck.attach(*fk);
  fk->sim().set_tracer(&forked);
  fk->run_until(duration);
  fork_ck.checkpoint();
  EXPECT_TRUE(fork_ck.ok()) << name << " (fork):\n" << fork_ck.report();
  EXPECT_EQ(cold.digest_hex(), forked.digest_hex()) << name << " cut at "
                                                    << t.to_seconds() << " s";
}

// --- Reliability: in-order delivery survives random loss. ---
TEST_P(PerCca, RecoversFromRandomLoss) {
  const CcaCase& c = GetParam();
  Scenario sc(base_config(c));
  FlowSpec f;
  f.cca = c.make();
  f.min_rtt = TimeNs::millis(60);
  f.loss_rate = 0.01;
  f.loss_seed = 5;
  sc.add_flow(std::move(f));
  run_checked(sc, TimeNs::seconds(kDurationS), c.name);
  // Whatever the CCA does with the loss signal, the transport must keep
  // advancing the in-order delivery point.
  EXPECT_GT(sc.sender(0).delivered_bytes(), uint64_t{200} * kMss);
}

// --- Receiver flow control: a finite advertised window clamps every CCA,
// under loss and jitter, with the runtime checker enforcing the rwnd-clamp
// (inflight never past min(cwnd, advertised window)) and persist-coverage
// invariants throughout. ---
TEST_P(PerCca, RespectsFiniteReceiveWindowUnderLossAndJitter) {
  const CcaCase& c = GetParam();
  Scenario sc(base_config(c));
  FlowSpec f;
  f.cca = c.make();
  f.min_rtt = TimeNs::millis(60);
  f.loss_rate = 0.01;
  f.loss_seed = 9;
  f.data_jitter =
      std::make_unique<UniformJitter>(TimeNs::zero(), TimeNs::millis(3), 13);
  f.recv.buffer_bytes = 32 * kMss;
  f.recv.drain_rate = Rate::mbps(6);
  sc.add_flow(std::move(f));
  run_checked(sc, TimeNs::seconds(10), c.name + " (rwnd)");
  // The stream never ran past what the receiver could accept, and the
  // transport still made progress through the clamped window.
  EXPECT_LE(sc.flow_table().next_seq[0], sc.receiver(0).accept_limit())
      << c.name;
  EXPECT_GT(sc.sender(0).delivered_bytes(), uint64_t{50} * kMss) << c.name;
}

// --- Fork equivalence with receiver flow control: the snapshot captures
// the receive buffer, the drain clock, and the persist / window-update
// timer slots, so a fork replays the cold continuation byte-for-byte even
// while one flow is deep in zero-window persist backoff. ---
TEST(ReceiverFlowControl, ForkWithFiniteRwndMatchesColdDigest) {
  golden::GoldenSpec spec;
  spec.name = "fork_rwnd";
  spec.flow_set =
      "newreno:rwnd=16:drain=0.1:wndupd=0+copa:rwnd=30:drain=0.5:drainburst=20";
  spec.link_mbps = 48;
  spec.rtt_ms = 40;
  spec.buffer = "2bdp";
  spec.duration_s = 6;
  const TimeNs duration = TimeNs::seconds(spec.duration_s);
  const TimeNs cut = TimeNs::millis(2731);  // unaligned mid-run point

  TraceRecorder cold;
  {
    auto sc = golden::build_golden(spec);
    sc->sim().set_tracer(&cold);
    sc->run_until(duration);
  }

  TraceRecorder forked;
  ScenarioSnapshot snap;
  {
    auto sc = golden::build_golden(spec);
    sc->sim().set_tracer(&forked);
    sc->run_until(cut);
    snap = sc->snapshot();
  }
  auto fk = Scenario::fork(snap);
  check::InvariantChecker ck;
  ck.attach(*fk);
  fk->sim().set_tracer(&forked);
  fk->run_until(duration);
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << ck.report();
  EXPECT_EQ(cold.digest_hex(), forked.digest_hex());
  // The scenario is only a persist test if persist actually ran: the glacial
  // drain (one RTT frees less than the SWS threshold) plus suppressed window
  // updates must force real zero-window probes, and the forked sender must
  // have inherited the probe counter across the snapshot.
  EXPECT_GT(fk->sender(0).probes_sent(), 0u);
  EXPECT_GT(fk->receiver(0).probes_received(), 0u);
}

// --- Relabel symmetry with an rwnd cohort: swapping a receiver-limited
// flow with an unconstrained one must carry the flow-control config along
// and permute the per-flow outcomes exactly. Distinct starts, RTTs, and
// drain rates keep every event off the shared-tie nanoseconds. ---
TEST(ReceiverFlowControl, RelabelSymmetryForRwndCohort) {
  constexpr size_t kFlows = 8;
  constexpr size_t kSwapA = 1;  // vegas, unconstrained
  constexpr size_t kSwapB = 6;  // copa, rwnd-limited
  struct Spec {
    std::string cca;
    TimeNs start;
    TimeNs rtt;
    bool limited;
    double drain_mbps;
  };
  std::vector<Spec> specs(kFlows);
  for (size_t i = 0; i < kFlows; ++i) {
    specs[i].cca = (i % 2 == 0) ? "copa" : "vegas";
    specs[i].start = TimeNs(static_cast<int64_t>(i) * 937'251);
    specs[i].rtt =
        TimeNs::millis(40) + TimeNs(static_cast<int64_t>(i) * 250'017);
    specs[i].limited = (i % 2 == 0);
    // Distinct drain rates keep the per-flow drain clocks (and any
    // window-update wakeups derived from them) mutually unaligned.
    specs[i].drain_mbps = 3.0 + 0.1 * static_cast<double>(i);
  }

  auto run = [&](const std::vector<Spec>& order) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(32);
    cfg.buffer_bytes = static_cast<uint64_t>(
        2.0 * Rate::mbps(32).bytes_per_second() * 0.040);
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (const Spec& s : order) {
      FlowSpec f;
      f.cca = sweep::make_cca(s.cca, 1);
      f.start_at = s.start;
      f.min_rtt = s.rtt;
      if (s.limited) {
        f.recv.buffer_bytes = 24 * kMss;
        f.recv.drain_rate = Rate::mbps(s.drain_mbps);
      }
      sc->add_flow(std::move(f));
    }
    run_checked(*sc, TimeNs::seconds(2), "rwnd relabel");
    std::vector<uint64_t> delivered(kFlows);
    for (size_t i = 0; i < kFlows; ++i) {
      delivered[i] = sc->flow_table().delivered[i];
    }
    return delivered;
  };

  const std::vector<uint64_t> base = run(specs);
  std::vector<Spec> swapped = specs;
  std::swap(swapped[kSwapA], swapped[kSwapB]);
  const std::vector<uint64_t> relabeled = run(swapped);

  for (size_t i = 0; i < kFlows; ++i) {
    const size_t expect_from =
        i == kSwapA ? kSwapB : (i == kSwapB ? kSwapA : i);
    EXPECT_EQ(relabeled[i], base[expect_from]) << "flow " << i;
  }
}

// --- Cohort scale: the flow-table transport keeps its symmetry and fork
// properties at hundreds of flows, not just pairs. ---

// Relabel symmetry at N=256: swapping the specs of two flows (one per CCA
// cohort) must swap their per-flow outcomes and leave every other flow's
// outcome untouched. All 256 flows get distinct start times and slightly
// distinct RTTs so no two events tie at the same nanosecond (where the
// (time, seq) tie-break is construction-order-dependent by design).
TEST(CohortScale, RelabelSymmetryAt256Flows) {
  constexpr size_t kFlows = 256;
  constexpr size_t kSwapA = 3;    // copa slot
  constexpr size_t kSwapB = 201;  // vegas slot
  struct Spec {
    std::string cca;
    TimeNs start;
    TimeNs rtt;
  };
  std::vector<Spec> specs(kFlows);
  for (size_t i = 0; i < kFlows; ++i) {
    specs[i].cca = (i % 2 == 0) ? "copa" : "vegas";
    specs[i].start = TimeNs(static_cast<int64_t>(i) * 937'251);  // ~0.94 ms
    specs[i].rtt = TimeNs::millis(40) + TimeNs(static_cast<int64_t>(i % 32) *
                                               250'017);
  }

  auto run = [&](const std::vector<Spec>& order) {
    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(256);
    cfg.buffer_bytes = static_cast<uint64_t>(
        2.0 * Rate::mbps(256).bytes_per_second() * 0.040);
    auto sc = std::make_unique<Scenario>(std::move(cfg));
    for (const Spec& s : order) {
      FlowSpec f;
      f.cca = sweep::make_cca(s.cca, 1);
      f.start_at = s.start;
      f.min_rtt = s.rtt;
      sc->add_flow(std::move(f));
    }
    run_checked(*sc, TimeNs::seconds(2), "cohort relabel");
    std::vector<uint64_t> delivered(kFlows);
    for (size_t i = 0; i < kFlows; ++i) {
      delivered[i] = sc->flow_table().delivered[i];
    }
    return delivered;
  };

  const std::vector<uint64_t> base = run(specs);
  std::vector<Spec> swapped = specs;
  std::swap(swapped[kSwapA], swapped[kSwapB]);
  const std::vector<uint64_t> relabeled = run(swapped);

  for (size_t i = 0; i < kFlows; ++i) {
    const size_t expect_from =
        i == kSwapA ? kSwapB : (i == kSwapB ? kSwapA : i);
    EXPECT_EQ(relabeled[i], base[expect_from]) << "flow " << i;
  }
}

// Fork equivalence at N=256: a snapshot of the four-cohort golden scenario
// taken mid-run, forked and run to the horizon, reproduces the cold run's
// packet digest byte-for-byte — the flow table, scoreboards, and owned
// timer slots all capture/restore across hundreds of rows.
TEST(CohortScale, ForkOf256FlowCohortMatchesColdDigest) {
  golden::GoldenSpec spec;
  spec.name = "fork_256";
  spec.flow_set = "newreno*64+cubic*64+vegas*64+copa*64";
  spec.link_mbps = 384;
  spec.rtt_ms = 40;
  spec.buffer = "2bdp";
  spec.duration_s = 2;
  const TimeNs duration = TimeNs::seconds(spec.duration_s);
  const TimeNs cut = TimeNs::millis(900);

  TraceRecorder cold;
  {
    auto sc = golden::build_golden(spec);
    sc->sim().set_tracer(&cold);
    sc->run_until(duration);
  }

  TraceRecorder forked;
  ScenarioSnapshot snap;
  {
    auto sc = golden::build_golden(spec);
    sc->sim().set_tracer(&forked);
    sc->run_until(cut);
    snap = sc->snapshot();
  }
  auto fk = Scenario::fork(snap);
  check::InvariantChecker ck;
  ck.attach(*fk);
  fk->sim().set_tracer(&forked);
  fk->run_until(duration);
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << ck.report();
  EXPECT_EQ(cold.digest_hex(), forked.digest_hex());
}

// Packet conservation over the flow table with randomized start times: for
// every row the columns must stay mutually consistent at a mid-run
// checkpoint and at the horizon, including rows whose flows start so late
// they never send (the never-started analog of a stopped flow).
TEST(CohortScale, FlowTableColumnsStayConsistentUnderRandomStarts) {
  constexpr size_t kFlows = 64;
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(64);
  cfg.buffer_bytes = static_cast<uint64_t>(
      2.0 * Rate::mbps(64).bytes_per_second() * 0.040);
  Scenario sc(std::move(cfg));
  uint64_t lcg = 0x6d5f7d51u;
  std::vector<TimeNs> starts(kFlows);
  for (size_t i = 0; i < kFlows; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Spread starts over [0, 3 s); horizon is 2.5 s, so the tail of the
    // cohort never starts at all.
    starts[i] = TimeNs(static_cast<int64_t>((lcg >> 17) % 3'000'000'000ull));
    FlowSpec f;
    f.cca = sweep::make_cca(i % 2 == 0 ? "copa" : "newreno", 1);
    f.start_at = starts[i];
    f.min_rtt = TimeNs::millis(40);
    sc.add_flow(std::move(f));
  }

  check::InvariantChecker ck;
  ck.attach(sc);
  const auto audit = [&](const std::string& label) {
    ck.checkpoint();
    ASSERT_TRUE(ck.ok()) << label << ":\n" << ck.report();
    const FlowTable& ft = sc.flow_table();
    ASSERT_EQ(ft.size(), kFlows);
    for (size_t i = 0; i < kFlows; ++i) {
      EXPECT_LE(ft.cum_acked[i], ft.next_seq[i]) << label << " flow " << i;
      EXPECT_LE(ft.inflight_bytes[i], ft.next_seq[i] - ft.cum_acked[i])
          << label << " flow " << i;
      EXPECT_EQ(ft.inflight_bytes[i], sc.sender(i).scoreboard_bytes())
          << label << " flow " << i;
      EXPECT_GE(ft.delivered[i], ft.cum_acked[i]) << label << " flow " << i;
      if (starts[i] >= sc.sim().now()) {
        EXPECT_EQ(ft.started[i], 0u) << label << " flow " << i;
        EXPECT_EQ(ft.packets_sent[i], 0u) << label << " flow " << i;
      } else {
        EXPECT_EQ(ft.started[i], 1u) << label << " flow " << i;
        EXPECT_GT(ft.packets_sent[i], 0u) << label << " flow " << i;
      }
    }
  };
  sc.run_until(TimeNs::millis(1200));
  audit("mid-run");
  sc.run_until(TimeNs::millis(2500));
  audit("horizon");
  sc.sim().set_checker(nullptr);
}

// --- Jitter schedules keep their budget for every policy and seed. ---
class JitterBudget : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, JitterBudget,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(JitterBudget, UniformPolicyStaysWithinBudget) {
  const uint64_t seed = GetParam();
  Simulator sim;
  NullHandler sink;
  const TimeNs d = TimeNs::millis(10);
  JitterBox box(sim, std::make_unique<UniformJitter>(TimeNs::zero(), d, seed),
                d, sink);
  Rng arrivals(seed * 977);
  TimeNs t = TimeNs::zero();
  for (int i = 0; i < 3000; ++i) {
    t += TimeNs::micros(arrivals.uniform(50, 3000));
    Packet p;
    p.seq = static_cast<uint64_t>(i) * kMss;
    sim.schedule_at(t, [&box, p] { box.handle(p); });
  }
  sim.run_until(t + TimeNs::seconds(1));
  EXPECT_EQ(box.stats().packets, 3000u);
  // The no-reorder clamp may briefly stack delays, but arrivals spaced
  // microseconds apart with <=10 ms jitter can exceed the budget only via
  // the clamp; the uniform draw itself never does. Allow the clamp's
  // overhang but require it to be rare.
  EXPECT_LT(box.stats().budget_violations, 90u);
  EXPECT_LT(box.stats().max_added, 2.0 * d);
}

TEST_P(JitterBudget, OnOffPolicyRespectsHighLevel) {
  const uint64_t seed = GetParam();
  Simulator sim;
  NullHandler sink;
  const TimeNs d = TimeNs::millis(8);
  JitterBox box(sim,
                std::make_unique<OnOffJitter>(d, TimeNs::millis(50),
                                              TimeNs::millis(50)),
                d, sink);
  Rng arrivals(seed);
  TimeNs t = TimeNs::zero();
  for (int i = 0; i < 2000; ++i) {
    t += TimeNs::micros(arrivals.uniform(100, 2000));
    Packet p;
    sim.schedule_at(t, [&box, p] { box.handle(p); });
  }
  sim.run_until(t + TimeNs::seconds(1));
  EXPECT_EQ(box.stats().budget_violations, 0u);
  EXPECT_LE(box.stats().max_added, d);
}

// --- FIFO ordering through arbitrary component stacks. ---
class OrderingSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST_P(OrderingSweep, LinkPlusJitterNeverReorders) {
  const uint64_t seed = GetParam();

  struct OrderCheck final : PacketHandler {
    uint64_t last_seq = 0;
    bool first = true;
    bool ok = true;
    void handle(Packet p) override {
      if (!first && p.seq < last_seq) ok = false;
      first = false;
      last_seq = p.seq;
    }
  };

  Simulator sim;
  OrderCheck check;
  JitterBox jitter(
      sim,
      std::make_unique<UniformJitter>(TimeNs::zero(), TimeNs::millis(20),
                                      seed),
      TimeNs::infinite(), check);
  PropagationDelay prop(sim, TimeNs::millis(10), jitter);
  BottleneckLink::Config lc;
  lc.rate = Rate::mbps(8);
  BottleneckLink link(sim, lc, prop);

  Rng arrivals(seed * 31);
  TimeNs t = TimeNs::zero();
  for (int i = 0; i < 2000; ++i) {
    t += TimeNs::micros(arrivals.uniform(100, 4000));
    Packet p;
    p.seq = static_cast<uint64_t>(i) * kMss;
    sim.schedule_at(t, [&link, p] { link.handle(p); });
  }
  sim.run_until(t + TimeNs::seconds(5));
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.last_seq, 1999ull * kMss);
}

// --- Work conservation of the bottleneck across random loads. ---
class WorkConservation : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, WorkConservation,
                         ::testing::Values(3u, 13u, 23u));

TEST_P(WorkConservation, BusyLinkServesAtFullRate) {
  const uint64_t seed = GetParam();
  Simulator sim;
  struct Count final : PacketHandler {
    uint64_t bytes = 0;
    void handle(Packet p) override { bytes += p.bytes; }
  } sink;
  BottleneckLink::Config lc;
  lc.rate = Rate::mbps(10);
  BottleneckLink link(sim, lc, sink);

  // Offered load 2x the link rate: the output must be exactly link-rate.
  Rng arrivals(seed);
  TimeNs t = TimeNs::zero();
  while (t < TimeNs::seconds(10)) {
    t += TimeNs::micros(arrivals.uniform(300, 900));  // ~2.5 kpps
    sim.schedule_at(t, [&link] { link.handle(Packet{}); });
  }
  sim.run_until(TimeNs::seconds(12));
  // Offered 2x for 10 s leaves a backlog, so the link stays busy for the
  // whole 12 s: output must be exactly the configured rate.
  const double served_mbps = static_cast<double>(sink.bytes) * 8 / 12.0 / 1e6;
  EXPECT_NEAR(served_mbps, 10.0, 0.2);
}

// --- Packet conservation: at any quiescent point, every packet offered to
// the bottleneck is accounted for as delivered, dropped, or queued. ---
class PacketConservation : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PacketConservation,
                         ::testing::Values(2u, 12u, 22u, 32u));

TEST_P(PacketConservation, OfferedEqualsDeliveredPlusDroppedPlusQueued) {
  const uint64_t seed = GetParam();
  Simulator sim;
  struct Count final : PacketHandler {
    uint64_t packets = 0;
    void handle(Packet) override { ++packets; }
  } sink;
  BottleneckLink::Config lc;
  lc.rate = Rate::mbps(8);
  lc.buffer_bytes = 20 * kMss;  // small enough that overload drops
  BottleneckLink link(sim, lc, sink);

  Rng arrivals(seed);
  TimeNs t = TimeNs::zero();
  uint64_t offered = 0;
  for (int burst = 0; burst < 40; ++burst) {
    // Alternate overload bursts with idle gaps so the queue both fills
    // (forcing drops) and fully drains (quiescent points) along the way.
    const int n = static_cast<int>(arrivals.uniform(5, 60));
    for (int i = 0; i < n; ++i) {
      t += TimeNs::micros(arrivals.uniform(50, 600));
      ++offered;
      sim.schedule_at(t, [&link] { link.handle(Packet{}); });
    }
    t += TimeNs::millis(arrivals.uniform(20, 120));
    const uint64_t offered_so_far = offered;
    sim.schedule_at(t, [&, offered_so_far] {
      EXPECT_EQ(offered_so_far, sink.packets + link.drops() +
                                    link.queued_bytes() / kMss);
    });
  }
  sim.run_until(t + TimeNs::seconds(2));  // long enough to drain fully
  EXPECT_EQ(link.queued_bytes(), 0u);
  EXPECT_EQ(offered, sink.packets + link.drops());
  EXPECT_GT(link.drops(), 0u);  // the property was exercised under overload
}

// --- FIFO through the jitter box: for every policy draw in [0, D], packets
// leave in arrival order and the audited delay stays within budget. ---
class JitterFifo : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, JitterFifo,
                         ::testing::Values(7u, 17u, 27u, 37u));

TEST_P(JitterFifo, UniformJitterNeverReordersAndKeepsBudget) {
  const uint64_t seed = GetParam();
  const TimeNs budget = TimeNs::millis(12);
  Simulator sim;
  struct InOrder final : PacketHandler {
    Simulator* sim = nullptr;
    uint64_t next_seq = 0;
    TimeNs last_at = TimeNs::zero();
    void handle(Packet p) override {
      EXPECT_EQ(p.seq, next_seq);
      next_seq = p.seq + kMss;
      EXPECT_GE(sim->now(), last_at);
      last_at = sim->now();
    }
  } sink;
  sink.sim = &sim;
  JitterBox box(sim,
                std::make_unique<UniformJitter>(TimeNs::zero(), budget, seed),
                budget, sink);

  Rng arrivals(seed + 1000);
  TimeNs t = TimeNs::zero();
  const uint64_t kPackets = 3000;
  for (uint64_t i = 0; i < kPackets; ++i) {
    // Inter-arrival from sub-slot to multi-slot scales, so releases contend
    // with each other and with the no-reorder clamp.
    t += TimeNs::micros(arrivals.uniform(1, 2500));
    Packet p;
    p.seq = i * kMss;
    sim.schedule_at(t, [&box, p] { box.handle(p); });
  }
  sim.run_until(t + TimeNs::seconds(1));
  EXPECT_EQ(sink.next_seq, kPackets * kMss);
  EXPECT_EQ(box.stats().packets, kPackets);
  EXPECT_EQ(box.stats().budget_violations, 0u);
  EXPECT_LE(box.stats().max_added, budget);
}

// --- Simulator clock and dispatch order across randomized schedules that
// straddle every wheel structure: same-slot collisions, in-horizon slots,
// beyond-horizon (far heap) outliers, and exact-timestamp duplicates. ---
class SimulatorOrdering : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrdering,
                         ::testing::Values(5u, 15u, 25u, 35u, 45u));

TEST_P(SimulatorOrdering, NowIsMonotoneAndOrderMatchesTimeThenInsertion) {
  const uint64_t seed = GetParam();
  Simulator sim;
  Rng rng(seed);
  struct Scheduled {
    int64_t at_ns;
    uint64_t id;  // insertion order
  };
  std::vector<Scheduled> expect;
  std::vector<uint64_t> fired;
  TimeNs last_now = TimeNs::zero();
  uint64_t id = 0;

  auto dispatch = [&](uint64_t my_id) {
    EXPECT_GE(sim.now(), last_now);  // the clock never runs backwards
    last_now = sim.now();
    fired.push_back(my_id);
  };
  // Delay mix: heavy sub-horizon traffic plus RTO-scale outliers (far
  // heap), duplicates of the exact same timestamp (seq tie-break), and
  // zero delays (same-tick insertion during drain).
  auto random_delay = [&rng]() -> TimeNs {
    const double pick = rng.uniform(0, 1);
    if (pick < 0.05) return TimeNs::zero();
    if (pick < 0.75) return TimeNs::micros(rng.uniform(1, 30000));
    if (pick < 0.95) return TimeNs::millis(rng.uniform(30, 70));
    return TimeNs::millis(rng.uniform(70, 900));
  };
  for (int i = 0; i < 2000; ++i) {
    const TimeNs delay = i % 97 == 0 ? TimeNs::millis(40)  // exact dups
                                     : random_delay();
    const uint64_t my_id = id++;
    expect.push_back({delay.ns(), my_id});
    sim.schedule_in(delay, [&dispatch, my_id] { dispatch(my_id); });
  }
  sim.run_until(TimeNs::seconds(2));
  EXPECT_EQ(sim.now(), TimeNs::seconds(2));
  ASSERT_EQ(fired.size(), expect.size());
  // Reference order: (time, insertion sequence), exactly what a global
  // priority queue would produce.
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return a.at_ns < b.at_ns;
                   });
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(fired[i], expect[i].id) << "position " << i;
  }
}

}  // namespace
}  // namespace ccstarve
