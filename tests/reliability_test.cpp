// Regression tests for the transport reliability machinery in Sender —
// each of these pins a bug found while reproducing the paper's experiments:
//
//   * RTO deadlines anchor to the oldest outstanding transmission, so a
//     busy ACK stream cannot postpone a head-of-line hole forever;
//   * the RTO margin (1.25*srtt) avoids spurious timeouts when rttvar
//     decays to zero on a constant-RTT path;
//   * SACK-style hole repair keeps in-order delivery moving under heavy
//     loss (one-hole-per-RTT NewReno recovery collapses at 20%+ loss);
//   * retransmissions replace scoreboard entries without inflating
//     inflight accounting.
#include <gtest/gtest.h>

#include <memory>

#include "cc/misc.hpp"
#include "cc/reno.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {
namespace {

TEST(Reliability, HeadOfLineHoleTimesOutDespiteAckStream) {
  // A large fixed window with brutal random loss: if RTO could be postponed
  // by later ACKs, the in-order point would stall forever (the bug showed
  // up as Allegro delivering 4.7 MB and then nothing for 35 s).
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(20);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<ConstCwnd>(100.0);
  f.min_rtt = TimeNs::millis(40);
  f.loss_rate = 0.25;  // every retransmission has a 25% chance of dying too
  f.loss_seed = 13;
  sc.add_flow(std::move(f));

  sc.run_until(TimeNs::seconds(10));
  const uint64_t at_10s = sc.sender(0).delivered_bytes();
  sc.run_until(TimeNs::seconds(30));
  const uint64_t at_30s = sc.sender(0).delivered_bytes();
  // In-order delivery keeps advancing through the whole run.
  EXPECT_GT(at_10s, uint64_t{500} * kMss);
  EXPECT_GT(at_30s, at_10s + uint64_t{500} * kMss);
}

TEST(Reliability, NoSpuriousTimeoutsOnConstantRttPath) {
  // Steady full-buffer operation with constant RTT: rttvar -> 0 and a naive
  // rto = srtt + 4*rttvar would coincide with every ACK arrival.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<ConstCwnd>(200.0);  // standing queue, fixed RTT
  f.min_rtt = TimeNs::millis(20);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(30));
  EXPECT_EQ(sc.stats(0).timeouts, 0u);
  EXPECT_EQ(sc.stats(0).fast_retransmits, 0u);
  EXPECT_NEAR(sc.throughput(0).to_mbps(), 10.0, 0.4);
}

TEST(Reliability, SackRepairSustainsHighLossGoodput) {
  // 10% random loss: classic one-hole-per-partial-ACK recovery would cap
  // healing at ~1 hole/RTT (25/s) while ~130 holes/s appear. SACK-style
  // repair must keep goodput within a factor of the loss-free rate.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(16);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<ConstCwnd>(60.0);
  f.min_rtt = TimeNs::millis(40);
  f.loss_rate = 0.10;
  f.loss_seed = 21;
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(30));
  EXPECT_GT(sc.throughput(0).to_mbps(), 8.0);
}

TEST(Reliability, RetransmissionsDoNotInflateInflight) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(8);
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<ConstCwnd>(30.0);
  f.min_rtt = TimeNs::millis(30);
  f.loss_rate = 0.05;
  f.loss_seed = 3;
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(20));
  // Inflight can never exceed the fixed window (plus one MSS of slack for
  // the in-progress send).
  EXPECT_LE(sc.sender(0).inflight_bytes(), uint64_t{31} * kMss);
  EXPECT_GT(sc.stats(0).fast_retransmits, 0u);
}

TEST(Reliability, RenoRecoversAndExitsRecovery) {
  // End-to-end NewReno loss episode: after a drop-tail overflow, cum
  // delivery resumes and cwnd follows the sawtooth — i.e. recovery exits.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(8);
  cfg.buffer_bytes = 40ull * kMss;
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<NewReno>();
  f.min_rtt = TimeNs::millis(60);
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(40));
  EXPECT_GT(sc.stats(0).fast_retransmits, 1u);
  EXPECT_GT(sc.throughput(0).to_mbps(), 6.0);
  // The cwnd series shows both cuts and regrowth (a sawtooth, not a cliff).
  const auto& cwnd = sc.stats(0).cwnd_bytes;
  const double late_max =
      cwnd.max_over(TimeNs::seconds(20), TimeNs::seconds(40));
  const double late_min =
      cwnd.min_over(TimeNs::seconds(20), TimeNs::seconds(40));
  EXPECT_GT(late_max, 1.3 * late_min);
}

TEST(Reliability, DelayedAckPathStillRecoversLoss) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(8);
  cfg.buffer_bytes = 60ull * kMss;
  Scenario sc(std::move(cfg));
  FlowSpec f;
  f.cca = std::make_unique<NewReno>();
  f.min_rtt = TimeNs::millis(60);
  f.ack_policy.ack_every = 4;
  f.loss_rate = 0.01;
  f.loss_seed = 9;
  sc.add_flow(std::move(f));
  sc.run_until(TimeNs::seconds(30));
  // Reno at 1% random loss is Mathis-limited: cwnd ~ 1.22/sqrt(p) ~ 12
  // packets -> ~2.4 Mbit/s at 60 ms. The point here is liveness (recovery
  // works through delayed ACKs), not rate.
  EXPECT_GT(sc.throughput(0).to_mbps(), 1.5);
}

}  // namespace
}  // namespace ccstarve
