// Scenario-level behavioural tests: multi-flow sharing, mixed CCAs,
// per-flow propagation delays, the strong-model link variant, and trace
// file round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "cc/cubic.hpp"
#include "cc/misc.hpp"
#include "cc/vegas.hpp"
#include "emu/trace.hpp"
#include "sim/scenario.hpp"

namespace ccstarve {
namespace {

TEST(MultiFlow, ThreeEqualFlowsSplitEvenly) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(12);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 3; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<ConstCwnd>(150.0);
    f.min_rtt = TimeNs::millis(30);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(30));
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(
        sc.throughput(i, TimeNs::seconds(10), TimeNs::seconds(30)).to_mbps(),
        4.0, 0.4);
  }
}

TEST(MultiFlow, FixedWindowShareIsInverselyProportionalToRtt) {
  // Classic window-limited arithmetic: throughput = W/RTT, so with equal
  // windows the 2x-RTT flow gets half. (Distinct from BBR's §5.2 dynamics.)
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(100);  // never the bottleneck
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<ConstCwnd>(50.0);
    f.min_rtt = TimeNs::millis(i == 0 ? 50 : 100);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(20));
  const double fast = sc.throughput(0).to_mbps();
  const double slow = sc.throughput(1).to_mbps();
  EXPECT_NEAR(fast / slow, 2.0, 0.15);
}

TEST(MultiFlow, BufferFillerBeatsDelayBasedOnDeepBuffer) {
  // The coexistence problem that stalled delay CCAs for a decade (§1):
  // against Cubic on a deep buffer, plain Vegas (no mode switching) is
  // squeezed to its alpha packets.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(16);
  cfg.buffer_bytes = 400ull * kMss;  // deep
  Scenario sc(std::move(cfg));
  FlowSpec v;
  v.cca = std::make_unique<Vegas>();
  v.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(v));
  FlowSpec c;
  c.cca = std::make_unique<Cubic>();
  c.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(c));
  sc.run_until(TimeNs::seconds(40));
  const double vegas =
      sc.throughput(0, TimeNs::seconds(20), TimeNs::seconds(40)).to_mbps();
  const double cubic =
      sc.throughput(1, TimeNs::seconds(20), TimeNs::seconds(40)).to_mbps();
  EXPECT_GT(cubic, 4.0 * vegas);
}

TEST(MultiFlow, LateFlowConvergesWithVegas) {
  // Vegas AIAD with a unique fixed point: a flow joining 10 s late still
  // converges toward an even split.
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<Vegas>();
    f.min_rtt = TimeNs::millis(40);
    f.start_at = TimeNs::seconds(i * 10.0);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(60));
  const double a =
      sc.throughput(0, TimeNs::seconds(40), TimeNs::seconds(60)).to_mbps();
  const double b =
      sc.throughput(1, TimeNs::seconds(40), TimeNs::seconds(60)).to_mbps();
  EXPECT_LT(std::max(a, b) / std::min(a, b), 1.6);
}

TEST(StrongModelLink, TwoFlowsShareDelayServerFifo) {
  // The §6.5 link variant carries multiple flows through one FIFO with an
  // imposed delay pattern; both see the same queueing delays.
  ScenarioConfig cfg;
  cfg.delay_server = [](TimeNs) { return TimeNs::millis(5); };
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.cca = std::make_unique<ConstCwnd>(20.0);
    f.min_rtt = TimeNs::millis(40);
    sc.add_flow(std::move(f));
  }
  sc.run_until(TimeNs::seconds(10));
  EXPECT_FALSE(sc.has_bottleneck());
  for (int i = 0; i < 2; ++i) {
    // RTT = 40 ms prop + 5 ms imposed; throughput = W/RTT.
    const double rtt = sc.stats(i).rtt_seconds.at(TimeNs::seconds(8));
    EXPECT_NEAR(rtt, 0.045, 0.002);
    EXPECT_NEAR(sc.throughput(i).to_mbps(), 20 * kMss * 8 / 0.045 / 1e6, 0.6);
  }
}

TEST(MultiFlow, PerFlowJitterBudgetsAreIndependent) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  cfg.jitter_budget = TimeNs::millis(5);
  Scenario sc(std::move(cfg));
  FlowSpec noisy;
  noisy.cca = std::make_unique<ConstCwnd>(20.0);
  noisy.min_rtt = TimeNs::millis(40);
  noisy.ack_jitter = std::make_unique<ConstantJitter>(TimeNs::millis(8));
  sc.add_flow(std::move(noisy));
  FlowSpec clean;
  clean.cca = std::make_unique<ConstCwnd>(20.0);
  clean.min_rtt = TimeNs::millis(40);
  sc.add_flow(std::move(clean));
  sc.run_until(TimeNs::seconds(5));
  EXPECT_GT(sc.ack_jitter_stats(0).budget_violations, 0u);
  EXPECT_EQ(sc.ack_jitter_stats(1).budget_violations, 0u);
  EXPECT_EQ(sc.data_jitter_stats(0).budget_violations, 0u);
}

TEST(TraceFiles, SaveAndLoadRoundTrip) {
  const DeliveryTrace t =
      DeliveryTrace::constant(Rate::mbps(6), TimeNs::seconds(2));
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccstarve_trace_test.trace")
          .string();
  t.save(path);
  const DeliveryTrace loaded = DeliveryTrace::load(path);
  EXPECT_EQ(loaded.size(), t.size());
  EXPECT_EQ(loaded.span(), t.span());
  std::remove(path.c_str());
  EXPECT_THROW(DeliveryTrace::load(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace ccstarve
