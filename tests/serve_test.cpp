// Tests for the serve subsystem (src/serve) and its util underpinnings:
//
//   * BoundedMq: the backpressure/shutdown contract — non-blocking
//     producers see would_block, blocked producers and consumers wake on
//     close(), buffered items survive close (drain-only).
//   * SubscriberQueue: the tiered drop/coalesce policy — bulk lines drop
//     oldest-first with coalesced gap counts, the reliable skeleton is
//     never dropped or reordered, an all-reliable overflow kills the
//     subscriber, and a fast consumer sees zero drops.
//   * JobChannel: exactly-once ordered delivery across the backlog-replay/
//     live boundary, eviction surfacing as a preloaded drop count.
//   * protocol: request parsing, response building, line classification.
//   * JobManager + Server: jobs end-to-end — the streamed payload of a run
//     job is byte-identical to the same scenario's offline telemetry
//     (ccstarve_run --metrics equivalence), sweep jobs stream records and
//     cancel mid-grid, and the TCP server survives subscribe/cancel/
//     shutdown sequences.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/sink.hpp"
#include "obs/telemetry.hpp"
#include "serve/hub.hpp"
#include "serve/jobs.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec_parse.hpp"
#include "util/mq.hpp"

using namespace ccstarve;
using namespace ccstarve::serve;

namespace {

// ---------------------------------------------------------------------------
// BoundedMq

TEST(BoundedMq, TryPushReportsFullWithoutEnqueuing) {
  BoundedMq<int> q(2);
  EXPECT_EQ(q.try_push(1), BoundedMq<int>::Push::ok);
  EXPECT_EQ(q.try_push(2), BoundedMq<int>::Push::ok);
  EXPECT_EQ(q.try_push(3), BoundedMq<int>::Push::would_block);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.try_push(3), BoundedMq<int>::Push::ok);
}

TEST(BoundedMq, PopForTimesOutOnEmpty) {
  BoundedMq<int> q(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
}

TEST(BoundedMq, CloseWakesBlockedProducerAndConsumer) {
  BoundedMq<int> q(1);
  ASSERT_EQ(q.push(1), BoundedMq<int>::Push::ok);

  std::atomic<bool> producer_woke{false}, consumer_woke{false};
  std::thread producer([&] {
    // Queue is full: this blocks until close().
    EXPECT_EQ(q.push(2), BoundedMq<int>::Push::closed);
    producer_woke = true;
  });
  BoundedMq<int> empty(1);
  std::thread consumer([&] {
    EXPECT_FALSE(empty.pop().has_value());
    consumer_woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(producer_woke.load());
  EXPECT_FALSE(consumer_woke.load());
  q.close();
  empty.close();
  producer.join();
  consumer.join();
  EXPECT_TRUE(producer_woke.load());
  EXPECT_TRUE(consumer_woke.load());
  // Drain-only: the buffered item survives the close.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedMq, MultiProducerItemsAllArriveExactlyOnce) {
  BoundedMq<int> q(8);
  constexpr int kProducers = 4, kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(q.push(p * kPerProducer + i), BoundedMq<int>::Push::ok);
      }
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  int got = 0;
  while (got < kProducers * kPerProducer) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    ++seen[static_cast<size_t>(*v)];
    ++got;
  }
  for (int p : seen) EXPECT_EQ(p, 1);
  for (auto& t : producers) t.join();
}

// ---------------------------------------------------------------------------
// SubscriberQueue tier policy

std::string bulk(int i) {
  return "{\"type\":\"sample\",\"i\":" + std::to_string(i) + "}";
}
std::string reliable(int i) {
  return "{\"type\":\"crossing\",\"i\":" + std::to_string(i) + "}";
}

TEST(SubscriberQueue, FastConsumerSeesEverythingInOrderNoDrops) {
  SubscriberQueue q(4);
  std::vector<std::string> out;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(q.offer(i % 3 == 0 ? reliable(i) : bulk(i)));
    while (auto item = q.pop_for(std::chrono::milliseconds(0))) {
      EXPECT_EQ(item->dropped_before, 0u);
      out.push_back(item->text());
    }
  }
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(q.dropped(), 0u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)],
              i % 3 == 0 ? reliable(i) : bulk(i));
  }
}

TEST(SubscriberQueue, OverflowDropsOldestBulkAndCoalescesGapCount) {
  SubscriberQueue q(3);
  ASSERT_TRUE(q.offer(bulk(0)));
  ASSERT_TRUE(q.offer(bulk(1)));
  ASSERT_TRUE(q.offer(reliable(2)));
  // Full. Two more arrivals evict bulk(0) then bulk(1); their gap counts
  // coalesce onto whatever followed them.
  ASSERT_TRUE(q.offer(bulk(3)));
  ASSERT_TRUE(q.offer(reliable(4)));
  EXPECT_EQ(q.dropped(), 2u);

  auto a = q.pop_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->text(), reliable(2));
  EXPECT_EQ(a->dropped_before, 2u);  // bulk(0) + bulk(1)
  auto b = q.pop_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->text(), bulk(3));
  EXPECT_EQ(b->dropped_before, 0u);
  auto c = q.pop_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->text(), reliable(4));
  EXPECT_FALSE(q.overflowed());
}

TEST(SubscriberQueue, BulkIncomingToAllReliableQueueIsCountedNotEnqueued) {
  SubscriberQueue q(2);
  ASSERT_TRUE(q.offer(reliable(0)));
  ASSERT_TRUE(q.offer(reliable(1)));
  // Nothing droppable in the queue; the incoming bulk line is the drop.
  ASSERT_TRUE(q.offer(bulk(2)));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
  // The gap surfaces on the NEXT enqueued line.
  auto a = q.pop_for(std::chrono::milliseconds(0));
  EXPECT_EQ(a->text(), reliable(0));
  auto b = q.pop_for(std::chrono::milliseconds(0));
  EXPECT_EQ(b->text(), reliable(1));
  ASSERT_TRUE(q.offer(reliable(3)));
  auto c = q.pop_for(std::chrono::milliseconds(0));
  EXPECT_EQ(c->text(), reliable(3));
  EXPECT_EQ(c->dropped_before, 1u);
}

TEST(SubscriberQueue, ReliableIncomingToAllReliableQueueOverflows) {
  SubscriberQueue q(2);
  ASSERT_TRUE(q.offer(reliable(0)));
  ASSERT_TRUE(q.offer(reliable(1)));
  EXPECT_FALSE(q.offer(reliable(2)));
  EXPECT_TRUE(q.overflowed());
  EXPECT_FALSE(q.offer(reliable(3)));  // dead once overflowed
  EXPECT_TRUE(q.drained());            // closed and cleared
}

TEST(SubscriberQueue, PreloadedDropsAttachToFirstLine) {
  SubscriberQueue q(4);
  q.preload_dropped(7);
  ASSERT_TRUE(q.offer(reliable(0)));
  auto a = q.pop_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->dropped_before, 7u);
  EXPECT_EQ(q.dropped(), 7u);
}

TEST(SubscriberQueue, CloseWakesBlockedConsumer) {
  SubscriberQueue q(4);
  std::thread consumer([&] {
    auto item = q.pop_for(std::chrono::milliseconds(5000));
    EXPECT_FALSE(item.has_value());
    EXPECT_TRUE(q.drained());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// JobChannel

TEST(JobChannel, SubscribeReplaysBacklogThenStreamsLiveExactlyOnce) {
  JobChannel ch(/*backlog_lines=*/1024, /*queue_capacity=*/1024);
  for (int i = 0; i < 5; ++i) ch.publish(reliable(i));
  auto q = ch.subscribe();
  for (int i = 5; i < 10; ++i) ch.publish(reliable(i));
  ch.finish();
  std::vector<std::string> got;
  while (auto item = q->pop_for(std::chrono::milliseconds(100))) {
    EXPECT_EQ(item->dropped_before, 0u);
    got.push_back(item->text());
  }
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], reliable(i));
  }
  EXPECT_TRUE(q->drained());
}

TEST(JobChannel, LateSubscriberPastEvictionGetsDropMarker) {
  JobChannel ch(/*backlog_lines=*/4, /*queue_capacity=*/64);
  for (int i = 0; i < 10; ++i) ch.publish(reliable(i));
  EXPECT_EQ(ch.backlog_evicted(), 6u);
  auto q = ch.subscribe();
  auto first = q->pop_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->text(), reliable(6));
  EXPECT_EQ(first->dropped_before, 6u);
}

TEST(JobChannel, SubscribeAfterFinishIsPureReplay) {
  JobChannel ch(1024, 1024);
  ch.publish(reliable(0));
  ch.finish();
  ch.publish(reliable(1));  // post-finish publishes are ignored
  auto q = ch.subscribe();
  auto a = q->pop_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->text(), reliable(0));
  EXPECT_FALSE(q->pop_for(std::chrono::milliseconds(10)).has_value());
  EXPECT_TRUE(q->drained());
  EXPECT_EQ(ch.published(), 1u);
}

TEST(JobChannel, OverflowedSubscriberIsForgottenOthersKeepStreaming) {
  JobChannel ch(1024, /*queue_capacity=*/2);
  auto slow = ch.subscribe();
  auto fast = ch.subscribe();
  EXPECT_EQ(ch.subscriber_count(), 2u);
  int fast_got = 0;
  for (int i = 0; i < 8; ++i) {
    ch.publish(reliable(i));
    while (fast->pop_for(std::chrono::milliseconds(0))) ++fast_got;
  }
  EXPECT_TRUE(slow->overflowed());
  EXPECT_EQ(ch.subscriber_count(), 1u);
  EXPECT_EQ(fast_got, 8);
}

// ---------------------------------------------------------------------------
// protocol

TEST(Protocol, ParsesFlatRequests) {
  std::string err;
  auto r = parse_request(
      R"({"cmd":"submit","flows":"copa+copa","link":120,"check":true})",
      &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->cmd, "submit");
  EXPECT_EQ(r->str("flows"), "copa+copa");
  EXPECT_EQ(r->num("link"), 120.0);
  EXPECT_EQ(r->num("check"), 1.0);
  EXPECT_FALSE(r->has("port"));
  // Cross-type views: numbers render canonically, numeric strings parse.
  EXPECT_EQ(r->str("link"), "120");
}

TEST(Protocol, NumFallsBackToParsingStringFields) {
  std::string err;
  auto r = parse_request(R"({"cmd":"submit","link":"60","rtt":"x"})", &err);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->num("link", -1), 60.0);
  EXPECT_EQ(r->num("rtt", -1), -1.0);  // unparsable -> default
}

TEST(Protocol, RejectsMalformedRequests) {
  std::string err;
  EXPECT_FALSE(parse_request("", &err).has_value());
  EXPECT_FALSE(parse_request("not json", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"flows":"copa"})", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"cmd":"x","nested":{"a":1}})", &err)
                   .has_value());
  EXPECT_FALSE(parse_request(R"({"cmd":"x"} trailing)", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"cmd":"x")", &err).has_value());
}

TEST(Protocol, JsonObjEscapesAndRendersCanonicalNumbers) {
  EXPECT_EQ(JsonObj().str("a", "q\"b\\c").num("n", -0.0).done(),
            R"({"a":"q\"b\\c","n":0})");
  EXPECT_EQ(JsonObj().done(), "{}");
}

TEST(Protocol, ClassifiesControlAndBulkLines) {
  EXPECT_TRUE(is_control_line(R"({"type":"hello","proto":1})"));
  EXPECT_TRUE(is_control_line(R"({"type":"stream_end","job":1})"));
  EXPECT_FALSE(is_control_line(R"({"type":"sample","t":0.01})"));
  EXPECT_FALSE(is_control_line(R"({"key":"flows=...","jain":1})"));

  EXPECT_TRUE(is_bulk_line(R"({"type":"sample","t":0.01})"));
  EXPECT_TRUE(is_bulk_line(R"({"type":"link","t":0.01})"));
  EXPECT_TRUE(is_bulk_line(R"({"type":"ratio","t":0.01})"));
  EXPECT_FALSE(is_bulk_line(R"({"type":"meta","flows":2})"));
  EXPECT_FALSE(is_bulk_line(R"({"type":"crossing","t":1})"));
  EXPECT_FALSE(is_bulk_line(R"({"key":"flows=...","jain":1})"));
}

// ---------------------------------------------------------------------------
// parse_job_spec

Request make_request(const std::string& line) {
  std::string err;
  auto r = parse_request(line, &err);
  EXPECT_TRUE(r.has_value()) << err;
  return *r;
}

TEST(JobSpecParse, RunDefaultsMirrorCcstarveRun) {
  std::string err;
  auto spec = parse_job_spec(
      make_request(R"({"cmd":"submit","flows":"copa+copa"})"), &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->kind, JobKind::run);
  EXPECT_EQ(spec->point.flow_set, "copa+copa");
  EXPECT_EQ(spec->point.link_mbps, 60.0);
  EXPECT_EQ(spec->point.rtt_ms, 60.0);
  EXPECT_EQ(spec->point.duration_s, 60.0);
  EXPECT_EQ(spec->point.seed, 0u);  // ccstarve_run's default, not the grid's
  EXPECT_EQ(spec->interval_ms, 10.0);
  EXPECT_FALSE(spec->check);
}

TEST(JobSpecParse, SweepGridExpandsAxes) {
  std::string err;
  auto spec = parse_job_spec(
      make_request(R"({"cmd":"submit","kind":"sweep",)"
                   R"("flows":"copa+copa;bbr+bbr","link":"20,60",)"
                   R"("seeds":"1,2"})"),
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->kind, JobKind::sweep);
  EXPECT_EQ(spec->points.size(), 2u * 2u * 2u);
}

TEST(JobSpecParse, RejectsBadSpecs) {
  std::string err;
  EXPECT_FALSE(
      parse_job_spec(make_request(R"({"cmd":"submit"})"), &err).has_value());
  EXPECT_FALSE(parse_job_spec(
                   make_request(R"({"cmd":"submit","kind":"walk"})"), &err)
                   .has_value());
  EXPECT_FALSE(
      parse_job_spec(
          make_request(R"({"cmd":"submit","flows":"definitely-not-a-cca"})"),
          &err)
          .has_value());
  EXPECT_FALSE(parse_job_spec(make_request(R"({"cmd":"submit","kind":"sweep",)"
                                           R"("flows":"copa+copa",)"
                                           R"("link":"lin:bad"})"),
                              &err)
                   .has_value());
}

// ---------------------------------------------------------------------------
// JobManager: byte-identity, cancellation, sweep streaming

// The offline reference: the same scenario run the way ccstarve_run
// --metrics runs it, lines captured in a MemorySink.
std::vector<std::string> offline_telemetry_lines(const sweep::SweepPoint& pt,
                                                 double interval_ms) {
  auto sc = sweep::build_point_scenario(pt, nullptr);
  obs::MemorySink sink(1u << 20);
  obs::TelemetryConfig tc;
  tc.interval = TimeNs::millis(interval_ms);
  tc.sink = &sink;
  for (const auto& fa : sweep::parse_flow_set(pt.flow_set)) {
    tc.flow_labels.push_back(fa.cca);
  }
  obs::FlowTelemetry telemetry(std::move(tc));
  telemetry.attach(*sc);
  sc->run_until(TimeNs::seconds(pt.duration_s));
  telemetry.finish(TimeNs::seconds(pt.duration_s));
  return sink.snapshot();
}

// Drains a subscription to completion, separating payload from control.
struct Captured {
  std::vector<std::string> payload;
  std::vector<std::string> control;
  uint64_t dropped = 0;
};

Captured drain(SubscriberQueue& q) {
  Captured c;
  while (true) {
    auto item = q.pop_for(std::chrono::milliseconds(250));
    if (!item) {
      if (q.drained() || q.overflowed()) break;
      continue;
    }
    c.dropped += item->dropped_before;
    (is_control_line(item->text()) ? c.control : c.payload)
        .push_back(item->text());
  }
  return c;
}

TEST(JobManager, RunJobStreamsByteIdenticalTelemetry) {
  SubscriberHub hub(1u << 20, 1u << 20);
  JobManager mgr(hub, {/*executors=*/1, /*cache_dir=*/""});

  std::string err;
  auto spec = parse_job_spec(
      make_request(R"({"cmd":"submit","flows":"copa+copa","duration":3,)"
                   R"("seed":0})"),
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const sweep::SweepPoint pt = spec->point;

  const uint64_t id = mgr.submit(std::move(*spec));
  ASSERT_NE(id, 0u);
  auto q = hub.get(id)->subscribe();
  const Captured got = drain(*q);

  EXPECT_EQ(got.dropped, 0u);
  ASSERT_EQ(got.control.size(), 1u);  // job_done
  EXPECT_NE(got.control[0].find("\"state\":\"done\""), std::string::npos);

  const std::vector<std::string> want =
      offline_telemetry_lines(pt, /*interval_ms=*/10);
  ASSERT_EQ(got.payload.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.payload[i], want[i]) << "line " << i;
  }

  auto st = mgr.status(id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::done);
  EXPECT_EQ(st->points_done, 1u);
}

TEST(JobManager, CancelledRunJobStillEmitsSummariesAndEndLine) {
  SubscriberHub hub;
  JobManager mgr(hub, {1, ""});
  std::string err;
  auto spec = parse_job_spec(
      make_request(R"({"cmd":"submit","flows":"copa+copa","duration":600})"),
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const uint64_t id = mgr.submit(std::move(*spec));
  ASSERT_NE(id, 0u);
  auto q = hub.get(id)->subscribe();
  // Let it produce a little, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(mgr.cancel(id));
  const Captured got = drain(*q);

  // The stream is well-formed despite the cancel: flow summaries and the
  // telemetry end line precede job_done.
  ASSERT_FALSE(got.payload.empty());
  bool saw_end = false, saw_summary = false;
  for (const auto& l : got.payload) {
    if (l.rfind("{\"type\":\"end\"", 0) == 0) saw_end = true;
    if (l.rfind("{\"type\":\"flow_summary\"", 0) == 0) saw_summary = true;
  }
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_summary);
  ASSERT_FALSE(got.control.empty());
  EXPECT_NE(got.control.back().find("\"state\":\"cancelled\""),
            std::string::npos);
  auto st = mgr.status(id);
  EXPECT_EQ(st->state, JobState::cancelled);
  // Terminal: a second cancel is a no-op error.
  EXPECT_FALSE(mgr.cancel(id));
}

TEST(JobManager, SweepJobStreamsRecordsAndProgress) {
  SubscriberHub hub;
  JobManager mgr(hub, {1, ""});
  std::string err;
  auto spec = parse_job_spec(
      make_request(R"({"cmd":"submit","kind":"sweep","flows":"copa+copa",)"
                   R"("link":"20,60","duration":2,"jobs":2})"),
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const uint64_t id = mgr.submit(std::move(*spec));
  ASSERT_NE(id, 0u);
  auto q = hub.get(id)->subscribe();
  const Captured got = drain(*q);

  // 2 records (completion order), each with a progress line, plus job_done.
  ASSERT_EQ(got.payload.size(), 2u);
  for (const auto& l : got.payload) {
    EXPECT_EQ(l.find("{\"key\":\"flows=copa+copa|"), 0u);
  }
  size_t progress = 0;
  for (const auto& l : got.control) {
    if (l.find("{\"type\":\"progress\"") == 0) ++progress;
  }
  EXPECT_EQ(progress, 2u);
  auto st = mgr.status(id);
  EXPECT_EQ(st->state, JobState::done);
  EXPECT_EQ(st->points_done, 2u);
  EXPECT_EQ(st->points_total, 2u);
}

TEST(JobManager, ShutdownCancelsQueuedJobs) {
  SubscriberHub hub;
  JobManager mgr(hub, {/*executors=*/1, ""});
  std::string err;
  // First job hogs the single executor; the second waits in the queue.
  auto long_spec = parse_job_spec(
      make_request(R"({"cmd":"submit","flows":"copa+copa","duration":600})"),
      &err);
  auto queued_spec = parse_job_spec(
      make_request(R"({"cmd":"submit","flows":"copa+copa","duration":1})"),
      &err);
  const uint64_t running = mgr.submit(std::move(*long_spec));
  const uint64_t queued = mgr.submit(std::move(*queued_spec));
  auto q = hub.get(queued)->subscribe();
  mgr.shutdown();
  EXPECT_EQ(mgr.status(running)->state, JobState::cancelled);
  EXPECT_EQ(mgr.status(queued)->state, JobState::cancelled);
  // The queued job's subscribers still get a terminal line, not a hang.
  const Captured got = drain(*q);
  ASSERT_FALSE(got.control.empty());
  EXPECT_NE(got.control.back().find("job_done"), std::string::npos);
  EXPECT_EQ(mgr.submit(JobSpec{}), 0u);  // post-shutdown submits refused
}

// ---------------------------------------------------------------------------
// Server end-to-end over TCP

struct LineClient {
  TcpConn conn;

  static LineClient connect_to(uint16_t port) {
    LineClient c;
    std::string err;
    c.conn = tcp_connect("127.0.0.1", port, &err);
    EXPECT_TRUE(c.conn.valid()) << err;
    std::string hello;
    EXPECT_TRUE(c.conn.read_line(&hello));
    EXPECT_EQ(hello.find("{\"type\":\"hello\""), 0u);
    return c;
  }

  std::string rpc(const std::string& req) {
    EXPECT_TRUE(conn.write_line(req));
    std::string resp;
    EXPECT_TRUE(conn.read_line(&resp));
    return resp;
  }
};

TEST(Server, EndToEndSubmitSubscribeMatchesOfflineRun) {
  Server server(ServeOptions{});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_NE(server.port(), 0);

  LineClient c = LineClient::connect_to(server.port());
  EXPECT_EQ(c.rpc(R"({"cmd":"ping"})"), R"({"type":"ok"})");

  const std::string submitted = c.rpc(
      R"({"cmd":"submit","flows":"copa+vegas","duration":2,"seed":3})");
  ASSERT_EQ(submitted.find("{\"type\":\"job\",\"job\":1"), 0u) << submitted;

  ASSERT_TRUE(c.conn.write_line(R"({"cmd":"subscribe","job":1})"));
  std::vector<std::string> payload;
  std::string line;
  bool ended = false;
  while (c.conn.read_line(&line)) {
    if (line.find("{\"type\":\"stream_end\"") == 0) {
      ended = true;
      break;
    }
    if (!is_control_line(line)) payload.push_back(line);
  }
  ASSERT_TRUE(ended);

  sweep::SweepPoint pt;
  pt.flow_set = "copa+vegas";
  pt.duration_s = 2;
  pt.seed = 3;
  const std::vector<std::string> want = offline_telemetry_lines(pt, 10);
  ASSERT_EQ(payload.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(payload[i], want[i]) << "line " << i;
  }

  // The connection is back in command mode after the stream.
  EXPECT_EQ(c.rpc(R"({"cmd":"ping"})"), R"({"type":"ok"})");
  // results replays the same payload (plus control lines) from the backlog.
  ASSERT_TRUE(c.conn.write_line(R"({"cmd":"results","job":1})"));
  std::vector<std::string> replay;
  while (c.conn.read_line(&line)) {
    if (line.find("{\"type\":\"stream_end\"") == 0) break;
    if (!is_control_line(line)) replay.push_back(line);
  }
  EXPECT_EQ(replay, payload);

  server.stop();
}

TEST(Server, ErrorsAndCancelOverTcp) {
  Server server(ServeOptions{});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  LineClient c = LineClient::connect_to(server.port());
  EXPECT_EQ(c.rpc("not json").find("{\"type\":\"error\""), 0u);
  EXPECT_EQ(c.rpc(R"({"cmd":"warp"})").find("{\"type\":\"error\""), 0u);
  EXPECT_EQ(c.rpc(R"({"cmd":"cancel","job":99})").find("{\"type\":\"error\""),
            0u);
  EXPECT_EQ(c.rpc(R"({"cmd":"status","job":99})").find("{\"type\":\"error\""),
            0u);
  EXPECT_EQ(
      c.rpc(R"({"cmd":"subscribe","job":99})").find("{\"type\":\"error\""),
      0u);
  EXPECT_EQ(c.rpc(R"({"cmd":"submit","flows":"nope"})")
                .find("{\"type\":\"error\""),
            0u);

  // Cancel a long-running job from a second connection while the first
  // subscribes; the subscriber's stream terminates.
  const std::string submitted = c.rpc(
      R"({"cmd":"submit","flows":"copa+copa","duration":600})");
  ASSERT_EQ(submitted.find("{\"type\":\"job\""), 0u);
  LineClient other = LineClient::connect_to(server.port());
  ASSERT_TRUE(c.conn.write_line(R"({"cmd":"subscribe","job":1})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(other.rpc(R"({"cmd":"cancel","job":1})"), R"({"type":"ok"})");
  std::string line;
  bool ended = false;
  while (c.conn.read_line(&line)) {
    if (line.find("{\"type\":\"stream_end\"") == 0) {
      ended = true;
      break;
    }
  }
  EXPECT_TRUE(ended);

  // The "shutdown" command stops the server; wait() returns.
  EXPECT_EQ(other.rpc(R"({"cmd":"shutdown"})"), R"({"type":"ok"})");
  server.wait();
  server.stop();
}

TEST(Server, ManySubscribersAllReceiveCompleteStreams) {
  ServeOptions opt;
  opt.executors = 1;
  Server server(std::move(opt));
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  LineClient submitter = LineClient::connect_to(server.port());
  const std::string submitted = submitter.rpc(
      R"({"cmd":"submit","flows":"copa+copa","duration":2,"seed":1})");
  ASSERT_EQ(submitted.find("{\"type\":\"job\""), 0u);

  constexpr int kSubscribers = 8;
  std::vector<std::thread> threads;
  std::vector<size_t> payload_counts(kSubscribers, 0);
  // Not vector<bool>: adjacent elements share a word, so writes from
  // different subscriber threads would race even at distinct indices.
  std::vector<char> clean(kSubscribers, 0);
  for (int s = 0; s < kSubscribers; ++s) {
    threads.emplace_back([&, s] {
      LineClient c = LineClient::connect_to(server.port());
      if (!c.conn.valid()) return;
      if (!c.conn.write_line(R"({"cmd":"subscribe","job":1})")) return;
      std::string line;
      while (c.conn.read_line(&line)) {
        if (line.find("{\"type\":\"stream_end\"") == 0) {
          clean[static_cast<size_t>(s)] = 1;
          break;
        }
        if (!is_control_line(line)) ++payload_counts[static_cast<size_t>(s)];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < kSubscribers; ++s) {
    EXPECT_TRUE(clean[static_cast<size_t>(s)]) << "subscriber " << s;
    EXPECT_EQ(payload_counts[static_cast<size_t>(s)], payload_counts[0]);
    EXPECT_GT(payload_counts[static_cast<size_t>(s)], 0u);
  }
  server.stop();
}

}  // namespace
