// Unit tests for src/sim: event ordering, link service, jitter boxes,
// receiver ACK policies, sender reliability, and end-to-end scenario plumbing.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cc/misc.hpp"
#include "sim/jitter.hpp"
#include "sim/link.hpp"
#include "sim/loss.hpp"
#include "sim/receiver.hpp"
#include "sim/scenario.hpp"
#include "sim/sender.hpp"
#include "sim/simulator.hpp"

namespace ccstarve {
namespace {

class CollectSink final : public PacketHandler {
 public:
  explicit CollectSink(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    arrivals.push_back({sim_.now(), pkt});
  }
  struct Arrival {
    TimeNs at;
    Packet pkt;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator& sim_;
};

TEST(Simulator, OrdersByTimeThenInsertion) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimeNs::millis(2), [&] { order.push_back(2); });
  sim.schedule_at(TimeNs::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(TimeNs::millis(2), [&] { order.push_back(3); });
  sim.run_until(TimeNs::millis(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimeNs::millis(5));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimeNs::seconds(2), [&] { fired = true; });
  sim.run_until(TimeNs::seconds(1));
  EXPECT_FALSE(fired);
  sim.run_until(TimeNs::seconds(3));
  EXPECT_TRUE(fired);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_in(TimeNs::millis(1), tick);
  };
  sim.schedule_at(TimeNs::zero(), tick);
  sim.run_until(TimeNs::seconds(1));
  EXPECT_EQ(count, 5);
}

TEST(BottleneckLink, ServesAtConfiguredRate) {
  Simulator sim;
  CollectSink sink(sim);
  BottleneckLink::Config cfg;
  cfg.rate = Rate::mbps(12);  // 1 ms per 1500 B packet
  BottleneckLink link(sim, cfg, sink);

  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.seq = static_cast<uint64_t>(i) * kMss;
    link.handle(p);
  }
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(1));
  EXPECT_EQ(sink.arrivals[1].at, TimeNs::millis(2));
  EXPECT_EQ(sink.arrivals[2].at, TimeNs::millis(3));
}

TEST(BottleneckLink, DropTail) {
  Simulator sim;
  CollectSink sink(sim);
  BottleneckLink::Config cfg;
  cfg.rate = Rate::mbps(12);
  cfg.buffer_bytes = 2 * kMss;
  BottleneckLink link(sim, cfg, sink);
  int drops_seen = 0;
  link.set_drop_listener([&](const Packet&) { ++drops_seen; });

  for (int i = 0; i < 5; ++i) link.handle(Packet{});
  sim.run_until(TimeNs::seconds(1));
  EXPECT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(link.drops(), 3u);
  EXPECT_EQ(drops_seen, 3);
}

TEST(BottleneckLink, QueueingDelayReflectsBacklog) {
  Simulator sim;
  NullHandler sink;
  BottleneckLink::Config cfg;
  cfg.rate = Rate::mbps(12);
  BottleneckLink link(sim, cfg, sink);
  for (int i = 0; i < 10; ++i) link.handle(Packet{});
  // 10 packets * 1 ms each.
  EXPECT_EQ(link.queueing_delay(), TimeNs::millis(10));
}

TEST(BottleneckLink, PrefillOccupiesAndDrains) {
  Simulator sim;
  CollectSink sink(sim);
  BottleneckLink::Config cfg;
  cfg.rate = Rate::mbps(12);
  BottleneckLink link(sim, cfg, sink);
  link.prefill(10 * kMss);
  EXPECT_EQ(link.queued_bytes(), 10ull * kMss);

  Packet real;
  real.seq = 7;
  link.handle(real);
  sim.run_until(TimeNs::seconds(1));
  // Dummies are delivered (to the sink here; the scenario demux discards
  // them) ahead of the real packet, which exits after 11 ms.
  ASSERT_EQ(sink.arrivals.size(), 11u);
  EXPECT_TRUE(sink.arrivals[0].pkt.is_dummy);
  EXPECT_FALSE(sink.arrivals[10].pkt.is_dummy);
  EXPECT_EQ(sink.arrivals[10].at, TimeNs::millis(11));
}

TEST(BottleneckLink, SetRateAffectsService) {
  Simulator sim;
  CollectSink sink(sim);
  BottleneckLink::Config cfg;
  cfg.rate = Rate::mbps(12);
  BottleneckLink link(sim, cfg, sink);
  link.handle(Packet{});
  link.handle(Packet{});
  sim.run_until(TimeNs::millis(1));  // first packet out at 1 ms
  link.set_rate(Rate::mbps(6));      // second now takes 2 ms
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[1].at, TimeNs::millis(3));
}

TEST(PropagationDelay, DelaysByConstant) {
  Simulator sim;
  CollectSink sink(sim);
  PropagationDelay prop(sim, TimeNs::millis(25), sink);
  prop.handle(Packet{});
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(25));
}

TEST(DelayServerLink, ImposesCallerDelayWithoutReordering) {
  Simulator sim;
  CollectSink sink(sim);
  // Decreasing delay function would reorder; the link must prevent that.
  DelayServerLink link(
      sim,
      [](TimeNs arrival) {
        return arrival < TimeNs::millis(1) ? TimeNs::millis(10)
                                           : TimeNs::millis(1);
      },
      sink);
  Packet a, b;
  a.seq = 0;
  b.seq = kMss;
  link.handle(a);
  sim.schedule_at(TimeNs::millis(2), [&] { link.handle(b); });
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].pkt.seq, 0u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(10));
  EXPECT_EQ(sink.arrivals[1].at, TimeNs::millis(10));  // held to avoid reorder
}

TEST(JitterBox, ConstantPolicyAddsDelayAndAudits) {
  Simulator sim;
  CollectSink sink(sim);
  JitterBox box(sim, std::make_unique<ConstantJitter>(TimeNs::millis(5)),
                TimeNs::millis(3), sink);
  box.handle(Packet{});
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(5));
  EXPECT_EQ(box.stats().budget_violations, 1u);  // 5 ms > 3 ms budget
  EXPECT_EQ(box.stats().max_added, TimeNs::millis(5));
}

TEST(JitterBox, ZeroJitterPassesThrough) {
  Simulator sim;
  CollectSink sink(sim);
  JitterBox box(sim, std::make_unique<ZeroJitter>(), TimeNs::millis(1), sink);
  sim.schedule_at(TimeNs::millis(7), [&] { box.handle(Packet{}); });
  sim.run_until(TimeNs::seconds(1));
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(7));
  EXPECT_EQ(box.stats().budget_violations, 0u);
}

TEST(JitterBox, AllButOneExemptsFirstPacketAfterTime) {
  Simulator sim;
  CollectSink sink(sim);
  JitterBox box(
      sim, std::make_unique<AllButOneJitter>(TimeNs::millis(1), TimeNs::millis(2)),
      TimeNs::infinite(), sink);
  box.handle(Packet{});  // before the exemption time: +1 ms
  sim.run_until(TimeNs::millis(2));
  box.handle(Packet{});  // exempt: released immediately
  box.handle(Packet{});  // only one exemption: +1 ms again
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(1));
  EXPECT_EQ(sink.arrivals[1].at, TimeNs::millis(2));
  EXPECT_EQ(sink.arrivals[2].at, TimeNs::millis(3));
}

TEST(PeriodicReleaseJitter, QuantizesReleaseTimes) {
  Simulator sim;
  CollectSink sink(sim);
  JitterBox box(sim,
                std::make_unique<PeriodicReleaseJitter>(TimeNs::millis(60)),
                TimeNs::infinite(), sink);
  sim.schedule_at(TimeNs::millis(10), [&] { box.handle(Packet{}); });
  sim.schedule_at(TimeNs::millis(61), [&] { box.handle(Packet{}); });
  sim.schedule_at(TimeNs::millis(120), [&] { box.handle(Packet{}); });
  sim.run_until(TimeNs::seconds(1));
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].at, TimeNs::millis(60));
  EXPECT_EQ(sink.arrivals[1].at, TimeNs::millis(120));
  EXPECT_EQ(sink.arrivals[2].at, TimeNs::millis(120));  // exactly on the grid
}

TEST(LossGate, DropsApproximatelyAtRate) {
  Simulator sim;
  CollectSink sink(sim);
  LossGate gate(0.5, 3, sink);
  for (int i = 0; i < 10000; ++i) gate.handle(Packet{});
  EXPECT_NEAR(static_cast<double>(gate.dropped()), 5000.0, 300.0);
  EXPECT_EQ(sink.arrivals.size() + gate.dropped(), 10000u);
}

TEST(LossGate, NeverDropsDummies) {
  Simulator sim;
  CollectSink sink(sim);
  LossGate gate(1.0, 3, sink);
  Packet dummy;
  dummy.is_dummy = true;
  gate.handle(dummy);
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(Receiver, CumulativeAckAdvances) {
  Simulator sim;
  CollectSink acks(sim);
  Receiver recv(sim, AckPolicy{}, acks);
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.seq = static_cast<uint64_t>(i) * kMss;
    p.bytes = kMss;
    recv.handle(p);
  }
  ASSERT_EQ(acks.arrivals.size(), 3u);
  EXPECT_EQ(acks.arrivals[2].pkt.ack_cum, 3ull * kMss);
  EXPECT_TRUE(acks.arrivals[2].pkt.is_ack);
}

TEST(Receiver, OutOfOrderTriggersImmediateDupAcks) {
  Simulator sim;
  CollectSink acks(sim);
  AckPolicy policy;
  policy.ack_every = 4;  // delayed ACKs, but gaps must ACK immediately
  Receiver recv(sim, policy, acks);
  Packet p0, p2;
  p0.seq = 0;
  p2.seq = 2 * kMss;
  recv.handle(p0);
  recv.handle(p2);  // gap at kMss
  ASSERT_GE(acks.arrivals.size(), 1u);
  const Packet& dup = acks.arrivals.back().pkt;
  EXPECT_EQ(dup.ack_cum, static_cast<uint64_t>(kMss));
  EXPECT_EQ(dup.ack_seq, 2ull * kMss);
}

TEST(Receiver, GapFillAbsorbsOutOfOrderQueue) {
  Simulator sim;
  CollectSink acks(sim);
  Receiver recv(sim, AckPolicy{}, acks);
  Packet p0, p1, p2;
  p0.seq = 0;
  p1.seq = kMss;
  p2.seq = 2 * kMss;
  recv.handle(p0);
  recv.handle(p2);
  recv.handle(p1);  // fills the gap; cum should jump to 3 segments
  EXPECT_EQ(recv.cum_received(), 3ull * kMss);
  EXPECT_EQ(acks.arrivals.back().pkt.ack_cum, 3ull * kMss);
}

TEST(Receiver, DelayedAckTimerFires) {
  Simulator sim;
  CollectSink acks(sim);
  AckPolicy policy;
  policy.ack_every = 4;
  policy.delayed_ack_timeout = TimeNs::millis(40);
  Receiver recv(sim, policy, acks);
  Packet p;
  p.seq = 0;
  recv.handle(p);
  EXPECT_TRUE(acks.arrivals.empty());  // waiting for more segments
  sim.run_until(TimeNs::millis(100));
  ASSERT_EQ(acks.arrivals.size(), 1u);
  EXPECT_EQ(acks.arrivals[0].at, TimeNs::millis(40));
}

TEST(Receiver, DelayedAckCountsSegments) {
  Simulator sim;
  CollectSink acks(sim);
  AckPolicy policy;
  policy.ack_every = 4;
  Receiver recv(sim, policy, acks);
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.seq = static_cast<uint64_t>(i) * kMss;
    recv.handle(p);
  }
  ASSERT_EQ(acks.arrivals.size(), 1u);
  EXPECT_EQ(acks.arrivals[0].pkt.ack_pkts, 4u);
  EXPECT_EQ(acks.arrivals[0].pkt.ack_cum, 4ull * kMss);
}

// End-to-end: a fixed-window flow on a clean path fills the pipe and
// delivers at the expected rate.
TEST(Scenario, ConstCwndThroughputMatchesWindowLimit) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(100);
  Scenario sc(std::move(cfg));
  FlowSpec spec;
  spec.cca = std::make_unique<ConstCwnd>(10.0);
  spec.min_rtt = TimeNs::millis(100);
  sc.add_flow(std::move(spec));
  sc.run_until(TimeNs::seconds(20));
  // 10 packets per 100 ms RTT = 1.2 Mbit/s (far below the 100 Mbit/s link).
  EXPECT_NEAR(sc.throughput(0).to_mbps(), 1.2, 0.1);
}

TEST(Scenario, ConstCwndSaturatesSlowLink) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(1);
  Scenario sc(std::move(cfg));
  FlowSpec spec;
  spec.cca = std::make_unique<ConstCwnd>(100.0);
  spec.min_rtt = TimeNs::millis(20);
  sc.add_flow(std::move(spec));
  sc.run_until(TimeNs::seconds(30));
  EXPECT_NEAR(sc.throughput(0).to_mbps(), 1.0, 0.05);
  // The queue holds the excess window: RTT ~= cwnd/C.
  const double rtt =
      sc.stats(0).rtt_seconds.at(sc.sim().now());
  EXPECT_NEAR(rtt, 100.0 * kMss * 8 / 1e6, 0.15);
}

TEST(Scenario, TwoEqualFlowsShareFairly) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.cca = std::make_unique<ConstCwnd>(200.0);
    spec.min_rtt = TimeNs::millis(20);
    sc.add_flow(std::move(spec));
  }
  sc.run_until(TimeNs::seconds(30));
  const double a = sc.throughput(0).to_mbps();
  const double b = sc.throughput(1).to_mbps();
  EXPECT_NEAR(a + b, 10.0, 0.3);
  EXPECT_NEAR(a / b, 1.0, 0.1);
}

TEST(Scenario, LossyFlowRetransmitsAndStillDelivers) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(10);
  Scenario sc(std::move(cfg));
  FlowSpec spec;
  spec.cca = std::make_unique<ConstCwnd>(20.0);
  spec.min_rtt = TimeNs::millis(20);
  spec.loss_rate = 0.02;
  sc.add_flow(std::move(spec));
  sc.run_until(TimeNs::seconds(30));
  EXPECT_GT(sc.throughput(0).to_mbps(), 1.0);
  EXPECT_GT(sc.stats(0).fast_retransmits, 0u);
  // Delivered bytes are contiguous: the flow recovered every loss.
  EXPECT_GT(sc.sender(0).delivered_bytes(), 0u);
}

TEST(Scenario, PrefillCreatesInitialQueueDelay) {
  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(12);  // 1 ms per packet
  cfg.prefill_bytes = 50 * kMss;   // 50 ms initial queue
  Scenario sc(std::move(cfg));
  FlowSpec spec;
  spec.cca = std::make_unique<ConstCwnd>(2.0);
  spec.min_rtt = TimeNs::millis(10);
  sc.add_flow(std::move(spec));
  sc.run_until(TimeNs::seconds(2));
  // The first packet waited behind ~50 ms of dummies.
  const double first_rtt = sc.stats(0).rtt_seconds.samples().front().value;
  EXPECT_NEAR(first_rtt, 0.010 + 0.051, 0.002);
}

TEST(InlineFn, StoresInvokesAndMoves) {
  InlineFn<int(int), 48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  int base = 10;
  f.emplace([&base](int x) { return base + x; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(5), 15);
  InlineFn<int(int), 48> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(g(7), 17);
  g.reset();
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFn, HeapFallbackForOversizedCaptures) {
  // A capture bigger than the inline buffer must still work (and destroy
  // its state exactly once).
  struct Big {
    char blob[128] = {};
    std::shared_ptr<int> alive = std::make_shared<int>(7);
  };
  Big big;
  std::weak_ptr<int> watch = big.alive;
  {
    InlineFn<int(), 48> f;
    f.emplace([big] { return *big.alive; });
    big.alive.reset();
    EXPECT_EQ(f(), 7);
    InlineFn<int(), 48> g = std::move(f);
    EXPECT_EQ(g(), 7);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventPool, RecyclesNodesWithoutCarvingNew) {
  EventPool pool;
  Event* a = pool.alloc();
  Event* b = pool.alloc();
  const uint64_t carved = pool.nodes_carved();
  EXPECT_EQ(carved, 2u);
  pool.release(b);
  pool.release(a);
  // LIFO recycling, no fresh carves.
  EXPECT_EQ(pool.alloc(), a);
  EXPECT_EQ(pool.alloc(), b);
  EXPECT_EQ(pool.nodes_carved(), carved);
}

TEST(Simulator, SteadyStateSchedulingAllocatesNoNewEvents) {
  EventPool pool;
  Simulator sim(&pool);
  // A self-rescheduling timer reaches steady state after the first event.
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10000) sim.schedule_in(TimeNs::micros(100), tick);
  };
  sim.schedule_at(TimeNs::zero(), tick);
  sim.run_until(TimeNs::seconds(2));
  EXPECT_EQ(count, 10000);
  // The re-schedule happens while the firing node is still in flight, so
  // steady state is two nodes ping-ponging through the free list.
  EXPECT_LE(pool.nodes_carved(), 2u);
}

TEST(Simulator, SharedPoolSurvivesConsecutiveSimulators) {
  EventPool pool;
  uint64_t carved_after_first = 0;
  for (int round = 0; round < 3; ++round) {
    Simulator sim(&pool);
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(TimeNs::micros(10 * i), [] {});
    }
    sim.run_until(TimeNs::millis(10));
    if (round == 0) {
      carved_after_first = pool.nodes_carved();
    } else {
      // Later simulators run entirely on recycled nodes.
      EXPECT_EQ(pool.nodes_carved(), carved_after_first);
    }
  }
}

TEST(Simulator, PendingEventsReleasedOnDestruction) {
  EventPool pool;
  {
    Simulator sim(&pool);
    // Leave events pending in every structure: wheel, far heap, near heap.
    for (int i = 0; i < 50; ++i) {
      sim.schedule_in(TimeNs::micros(i), [] {});        // wheel
      sim.schedule_in(TimeNs::seconds(1 + i), [] {});   // far heap
    }
    sim.run_next();  // pulls one slot into the near heap
  }
  // All nodes returned: a fresh simulator reuses them without carving.
  const uint64_t carved = pool.nodes_carved();
  Simulator sim2(&pool);
  for (int i = 0; i < 99; ++i) sim2.schedule_in(TimeNs::micros(i), [] {});
  EXPECT_EQ(pool.nodes_carved(), carved);
}

TEST(Simulator, WheelHorizonBoundaryKeepsOrder) {
  // Events around the wheel-horizon boundary (wheel vs far heap) and in the
  // same slot must still dispatch in (time, insertion) order.
  Simulator sim;
  std::vector<int> order;
  const TimeNs horizon = TimeNs::millis(67);  // ~wheel span
  sim.schedule_at(horizon * 2.0, [&] { order.push_back(4); });
  sim.schedule_at(horizon - TimeNs::nanos(1), [&] { order.push_back(2); });
  sim.schedule_at(horizon + TimeNs::nanos(1), [&] { order.push_back(3); });
  sim.schedule_at(TimeNs::nanos(1), [&] { order.push_back(0); });
  sim.schedule_at(TimeNs::nanos(2), [&] { order.push_back(1); });
  sim.run_until(horizon * 3.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace ccstarve
