// Scenario snapshot/fork correctness (DESIGN.md §8).
//
// The contract under test: a continuation forked from a snapshot at time T
// dispatches the exact packet-event sequence a cold run dispatches after T.
// Digest comparisons use the golden-trace recorder, so "equal" here means
// byte-identical event streams (tags, times, fields), not statistical
// similarity.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/invariants.hpp"
#include "core/jitter_search.hpp"
#include "golden_scenarios.hpp"
#include "sim/scenario.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace_probe.hpp"
#include "sweep/spec_parse.hpp"

namespace ccstarve {
namespace {

using golden::GoldenSpec;
using golden::build_golden;

// Digest of an uninterrupted [0, duration] run. Runs under the invariant
// observer, which adds no trace records and so leaves the digest unchanged.
std::string cold_digest(const GoldenSpec& spec) {
  auto sc = build_golden(spec);
  check::InvariantChecker ck;
  ck.attach(*sc);
  TraceRecorder rec;
  sc->sim().set_tracer(&rec);
  sc->run_until(TimeNs::seconds(spec.duration_s));
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << spec.name << ":\n" << ck.report();
  return rec.digest_hex();
}

// Digest of a run that is snapshotted at `t` and finished by a fork: the
// same recorder watches the stem over [0, t] and the fork over (t, end],
// so the digest covers the full event stream and is directly comparable
// with cold_digest().
std::string forked_digest(const GoldenSpec& spec, TimeNs t) {
  TraceRecorder rec;
  ScenarioSnapshot snap;
  {
    auto stem = build_golden(spec);
    check::InvariantChecker stem_ck;
    stem_ck.attach(*stem);
    stem->sim().set_tracer(&rec);
    stem->run_until(t);
    stem_ck.checkpoint();
    EXPECT_TRUE(stem_ck.ok()) << spec.name << " (stem):\n" << stem_ck.report();
    snap = stem->snapshot();
  }  // the stem is gone; only the snapshot survives
  auto forked = Scenario::fork(snap);
  // Attaching mid-stream syncs the observer to the restored state; the
  // FIFO/monotonicity/jitter-bound checks still run on the continuation.
  check::InvariantChecker fork_ck;
  fork_ck.attach(*forked);
  forked->sim().set_tracer(&rec);
  forked->run_until(TimeNs::seconds(spec.duration_s));
  fork_ck.checkpoint();
  EXPECT_TRUE(fork_ck.ok()) << spec.name << " (fork):\n" << fork_ck.report();
  return rec.digest_hex();
}

// Every golden scenario that runs on the Scenario topology (the trace-link
// golden bypasses Scenario and is out of snapshot scope).
std::vector<GoldenSpec> forkable_specs() {
  std::vector<GoldenSpec> out;
  for (auto& s : golden::golden_specs()) {
    if (!s.trace_link) out.push_back(std::move(s));
  }
  return out;
}

class SnapshotFork : public ::testing::TestWithParam<GoldenSpec> {};

TEST_P(SnapshotFork, ForkContinuationMatchesColdRun) {
  const GoldenSpec& spec = GetParam();
  // Mid-run, deliberately not aligned to any scenario period.
  const TimeNs t = TimeNs::seconds(spec.duration_s) * 0.37;
  EXPECT_EQ(cold_digest(spec), forked_digest(spec, t)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SnapshotFork,
                         ::testing::ValuesIn(forkable_specs()),
                         [](const auto& info) { return info.param.name; });

TEST(SnapshotForkTest, RepeatedForksFromOneSnapshotAgree) {
  GoldenSpec spec{.name = "copa_duo", .flow_set = "copa+copa"};
  auto stem = build_golden(spec);
  stem->run_until(TimeNs::seconds(3));
  const ScenarioSnapshot snap = stem->snapshot();

  auto digest_of_fork = [&] {
    auto fk = Scenario::fork(snap);
    TraceRecorder rec;
    fk->sim().set_tracer(&rec);
    fk->run_until(TimeNs::seconds(spec.duration_s));
    return rec.digest_hex();
  };
  const std::string first = digest_of_fork();
  EXPECT_EQ(first, digest_of_fork());
  EXPECT_EQ(first, digest_of_fork());
}

TEST(SnapshotForkTest, StemContinuesUnperturbedAfterSnapshot) {
  GoldenSpec spec{.name = "copa_duo", .flow_set = "copa+copa"};
  const std::string cold = cold_digest(spec);

  auto sc = build_golden(spec);
  TraceRecorder rec;
  sc->sim().set_tracer(&rec);
  sc->run_until(TimeNs::seconds(3));
  const ScenarioSnapshot snap = sc->snapshot();  // capture is read-only
  sc->run_until(TimeNs::seconds(spec.duration_s));
  EXPECT_EQ(cold, rec.digest_hex());
}

TEST(SnapshotForkTest, SnapshotOfForkForksAgain) {
  GoldenSpec spec{.name = "copa_duo", .flow_set = "copa+copa"};
  TraceRecorder rec;
  ScenarioSnapshot snap1;
  {
    auto stem = build_golden(spec);
    stem->sim().set_tracer(&rec);
    stem->run_until(TimeNs::seconds(2));
    snap1 = stem->snapshot();
  }
  ScenarioSnapshot snap2;
  {
    auto mid = Scenario::fork(snap1);
    mid->sim().set_tracer(&rec);
    mid->run_until(TimeNs::seconds(5));
    snap2 = mid->snapshot();
  }
  auto tail = Scenario::fork(snap2);
  tail->sim().set_tracer(&rec);
  tail->run_until(TimeNs::seconds(spec.duration_s));
  EXPECT_EQ(cold_digest(spec), rec.digest_hex());
}

TEST(SnapshotForkTest, StartTimeOverrideMatchesColdLateStart) {
  // Cold reference: second flow joins at t=5.
  GoldenSpec late{.name = "late", .flow_set = "copa+copa:start=5"};
  const std::string cold = cold_digest(late);

  // Stem: identical up to t=4 (the second flow is pending either way),
  // forked with the start overridden to 5.
  TraceRecorder rec;
  ScenarioSnapshot snap;
  {
    auto stem = build_golden(
        GoldenSpec{.name = "stem", .flow_set = "copa+copa:start=9999"});
    stem->sim().set_tracer(&rec);
    stem->run_until(TimeNs::seconds(4));
    snap = stem->snapshot();
  }
  ForkOptions opts;
  opts.flows.resize(2);
  opts.flows[1].start_at = TimeNs::seconds(5);
  auto forked = Scenario::fork(snap, std::move(opts));
  forked->sim().set_tracer(&rec);
  forked->run_until(TimeNs::seconds(late.duration_s));
  EXPECT_EQ(cold, rec.digest_hex());
}

TEST(SnapshotForkTest, JitterOverrideMatchesColdLateOnset) {
  // Cold reference: flow 0's data path gains 8 ms of constant jitter at
  // t=5 (step onset).
  GoldenSpec late{.name = "late",
                  .flow_set = "copa:datajitter=step:8,5+copa"};
  const std::string cold = cold_digest(late);

  // Stem runs jitter-free to just before the onset; the fork swaps in the
  // member's policy. A fresh StepJitter clone equals the cold run's policy
  // state because StepJitter is stateless.
  const TimeNs fork_at = TimeNs::seconds(5) - TimeNs::nanos(1);
  TraceRecorder rec;
  ScenarioSnapshot snap;
  {
    auto stem =
        build_golden(GoldenSpec{.name = "stem", .flow_set = "copa+copa"});
    stem->sim().set_tracer(&rec);
    stem->run_until(fork_at);
    snap = stem->snapshot();
  }
  ForkOptions opts;
  opts.flows.resize(1);
  opts.flows[0].replace_data_jitter = true;
  opts.flows[0].data_jitter = sweep::make_jitter("step:8,5", /*seed=*/1);
  auto forked = Scenario::fork(snap, std::move(opts));
  forked->sim().set_tracer(&rec);
  forked->run_until(TimeNs::seconds(late.duration_s));
  EXPECT_EQ(cold, rec.digest_hex());
}

// --- Error paths -----------------------------------------------------------
// These pin the diagnostic messages: a snapshot mid-dispatch or a malformed
// fork request must fail loudly, not produce a silently-wrong continuation.

TEST(SnapshotErrors, SnapshotOfNonQuiescentInstantThrows) {
  GoldenSpec spec{.name = "copa_duo", .flow_set = "copa+copa"};
  auto sc = build_golden(spec);
  sc->run_until(TimeNs::seconds(1));
  // An event due exactly "now" makes the instant non-quiescent: the
  // same-timestamp dispatch order could not be reconstructed from a capture.
  sc->sim().schedule_at(sc->sim().now(), [] {});
  try {
    sc->snapshot();
    FAIL() << "snapshot() of a non-quiescent scenario must throw";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("not quiescent"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotErrors, ForkFlowOverrideIndexOutOfRangeThrows) {
  GoldenSpec spec{.name = "copa_duo", .flow_set = "copa+copa"};
  auto sc = build_golden(spec);
  sc->run_until(TimeNs::seconds(1));
  const ScenarioSnapshot snap = sc->snapshot();
  ForkOptions opts;
  opts.flows.resize(3);  // snapshot only has 2 flows
  try {
    Scenario::fork(snap, std::move(opts));
    FAIL() << "fork() with an out-of-range flow override must throw";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos)
        << "diagnostic should name the snapshot's flow count: " << what;
  }
}

TEST(SnapshotErrors, ForkStartOverrideNotAfterSnapshotThrows) {
  GoldenSpec spec{.name = "late", .flow_set = "copa+copa:start=9999"};
  auto sc = build_golden(spec);
  sc->run_until(TimeNs::seconds(2));
  const ScenarioSnapshot snap = sc->snapshot();
  ForkOptions opts;
  opts.flows.resize(2);
  opts.flows[1].start_at = snap.at;  // not strictly after the snapshot
  try {
    Scenario::fork(snap, std::move(opts));
    FAIL() << "fork() with start_at <= snapshot time must throw";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("not after the snapshot"),
              std::string::npos)
        << e.what();
  }
}

TEST(SnapshotForkTest, JitterSearchSharedWarmupMatchesColdSearch) {
  // The adversary search's fork path: one converged two-flow equilibrium,
  // every schedule forked from it. Outcomes must equal the cold search
  // exactly (same doubles, not approximately) because the forks are
  // byte-identical continuations.
  JitterSearchConfig cfg;
  cfg.link_rate = Rate::mbps(16);
  cfg.min_rtt = TimeNs::millis(40);
  cfg.d = TimeNs::millis(8);
  cfg.duration = TimeNs::seconds(8);
  cfg.onset = TimeNs::seconds(3);
  cfg.random_schedules = 1;
  const CcaMaker maker = [] { return sweep::make_cca("vegas", 11); };

  cfg.share_warmup = false;
  const JitterSearchResult cold = search_jitter_adversary(maker, cfg);
  cfg.share_warmup = true;
  const JitterSearchResult shared = search_jitter_adversary(maker, cfg);

  ASSERT_EQ(cold.outcomes.size(), shared.outcomes.size());
  for (size_t i = 0; i < cold.outcomes.size(); ++i) {
    EXPECT_EQ(cold.outcomes[i].name, shared.outcomes[i].name);
    EXPECT_EQ(cold.outcomes[i].utilization, shared.outcomes[i].utilization)
        << cold.outcomes[i].name;
    EXPECT_EQ(cold.outcomes[i].ratio, shared.outcomes[i].ratio)
        << cold.outcomes[i].name;
  }
  EXPECT_EQ(cold.worst_utilization, shared.worst_utilization);
  EXPECT_EQ(cold.worst_ratio, shared.worst_ratio);
  EXPECT_EQ(cold.any_violation, shared.any_violation);
}

}  // namespace
}  // namespace ccstarve
