// Tests for the src/sweep subsystem: spec grammar, grid expansion and
// canonical keys, JSONL record round-tripping, the result cache, and the
// engine's two load-bearing guarantees — parallel runs are byte-identical
// to serial runs, and a warm cache re-simulates nothing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/scenario.hpp"
#include "sweep/cache.hpp"
#include "sweep/engine.hpp"
#include "sweep/grid.hpp"
#include "sweep/prefix.hpp"
#include "sweep/record.hpp"
#include "sweep/spec_parse.hpp"
#include "util/parallel.hpp"

using namespace ccstarve;
using namespace ccstarve::sweep;

namespace {

// Cheap grid (short runs, two flow sets x two rates) used by the engine
// tests; ~1 simulated second per point keeps the suite fast.
SweepGrid small_grid() {
  SweepGrid g;
  g.flow_sets = {"vegas+vegas", "copa:datajitter=const:1"};
  g.link_mbps = {12, 24};
  g.rtt_ms = {20};
  g.duration_s = {1.5};
  g.seeds = {1, 2};
  return g;
}

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ccstarve_sweep_test_") + tag + "_" +
             std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace

TEST(SpecParse, FlowGrammarRoundTrip) {
  const FlowArgs fa =
      parse_flow("copa:start=2.5:rtt=40:loss=0.01:datajitter=onoff:5,10,20");
  EXPECT_EQ(fa.cca, "copa");
  EXPECT_DOUBLE_EQ(fa.start_s, 2.5);
  EXPECT_DOUBLE_EQ(*fa.rtt_ms, 40);
  EXPECT_DOUBLE_EQ(fa.loss, 0.01);
  EXPECT_EQ(fa.data_jitter, "onoff:5,10,20");
  EXPECT_TRUE(fa.ack_jitter.empty());
}

TEST(SpecParse, JitterSpecWithColonArgsRejoins) {
  // quantize's argument follows a ':', the historical ccstarve_run quirk.
  const FlowArgs fa = parse_flow("copa:ackjitter=quantize:60");
  EXPECT_EQ(fa.ack_jitter, "quantize:60");
  EXPECT_NE(make_jitter(fa.ack_jitter, 1), nullptr);
}

TEST(SpecParse, CohortMultiplierExpandsIdenticalFlows) {
  const auto cohort = parse_flow_set("copa*64");
  ASSERT_EQ(cohort.size(), 64u);
  for (const FlowArgs& fa : cohort) {
    EXPECT_EQ(fa.cca, "copa");
  }

  // Per-flow options ride along with the multiplied part, and plain parts
  // mix freely with multiplied ones.
  const auto mixed = parse_flow_set("vegas+bbr:rtt=80*3");
  ASSERT_EQ(mixed.size(), 4u);
  EXPECT_EQ(mixed[0].cca, "vegas");
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(mixed[i].cca, "bbr");
    EXPECT_DOUBLE_EQ(*mixed[i].rtt_ms, 80);
  }

  // *1 is the identity; the documented cap still parses.
  EXPECT_EQ(parse_flow_set("copa*1").size(), 1u);
  EXPECT_EQ(parse_flow_set("copa*16384").size(), 16384u);
}

TEST(SpecParse, CohortMultiplierRejectsMalformedCounts) {
  EXPECT_THROW(parse_flow_set("copa*0"), SpecError);      // empty cohort
  EXPECT_THROW(parse_flow_set("copa*abc"), SpecError);    // not a count
  EXPECT_THROW(parse_flow_set("copa*16385"), SpecError);  // over the cap
  EXPECT_THROW(parse_flow_set("copa*"), SpecError);       // missing count
  EXPECT_THROW(parse_flow_set("*4"), SpecError);          // missing spec
  EXPECT_THROW(parse_flow_set("copa*4*4"), SpecError);    // double suffix
}

TEST(SpecParse, ErrorsThrowSpecError) {
  EXPECT_THROW(parse_flow("nosuchcca"), SpecError);
  EXPECT_THROW(parse_flow("copa:bogus=1"), SpecError);
  EXPECT_THROW(parse_flow("copa:rtt=abc"), SpecError);
  EXPECT_THROW(make_jitter("warble:3", 1), SpecError);
  EXPECT_THROW(make_jitter("onoff:1", 1), SpecError);  // missing args
  EXPECT_THROW(parse_flow_set("copa++copa"), SpecError);
  EXPECT_THROW(parse_buffer_bytes("xbdp", Rate::mbps(10), 10), SpecError);
}

// Malformed specs must not only throw: the diagnostic has to name the
// offending token so a typo in a 50-point sweep spec is findable. (Several
// of these used to be silently accepted: extra jitter arguments were
// dropped, fractional packet counts truncated, negative losses kept.)
TEST(SpecParse, DiagnosticsNameTheOffendingToken) {
  auto expect_throw_with = [](auto&& fn, const std::string& needle) {
    try {
      fn();
      FAIL() << "expected SpecError mentioning '" << needle << "'";
    } catch (const SpecError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "diagnostic '" << e.what() << "' should mention '" << needle
          << "'";
    }
  };
  // Wrong jitter argument counts (the extra argument used to be ignored).
  expect_throw_with([] { make_jitter("onoff:8,50,50,50", 1); },
                    "3 argument(s), got 4");
  expect_throw_with([] { make_jitter("const:5,6", 1); },
                    "1 argument(s), got 2");
  expect_throw_with([] { make_jitter("step:5", 1); }, "2 argument(s), got 1");
  // Out-of-domain jitter arguments.
  expect_throw_with([] { make_jitter("const:-3", 1); }, "'-3' must be >= 0");
  expect_throw_with([] { make_jitter("quantize:0", 1); },
                    "'0' must be positive");
  expect_throw_with([] { make_jitter("onoff:8,0,0", 1); }, "must be positive");
  // A stray ':' part after the arguments.
  expect_throw_with([] { make_jitter("uniform:5:junk", 1); },
                    "extra part 'junk'");
  expect_throw_with([] { make_jitter("warble:3", 1); }, "'warble'");
  // Flow options out of domain.
  expect_throw_with([] { parse_flow("copa:start=-1"); },
                    "start '-1' must be >= 0");
  expect_throw_with([] { parse_flow("copa:rtt=0"); },
                    "rtt '0' must be positive");
  expect_throw_with([] { parse_flow("copa:loss=1.5"); },
                    "loss '1.5' must be in [0, 1]");
  expect_throw_with([] { parse_flow("copa:loss=-0.1"); },
                    "loss '-0.1' must be in [0, 1]");
  expect_throw_with([] { parse_flow("copa:bogus=1"); }, "'bogus'");
  expect_throw_with([] { parse_flow("nosuchcca"); }, "'nosuchcca'");
  // Buffer specs: zero/negative sizes and fractional packet counts used to
  // be cast to garbage.
  expect_throw_with([] { parse_buffer_bytes("0bdp", Rate::mbps(10), 10); },
                    "'0bdp' must be positive");
  expect_throw_with([] { parse_buffer_bytes("-2bdp", Rate::mbps(10), 10); },
                    "'-2bdp' must be positive");
  expect_throw_with([] { parse_buffer_bytes("0", Rate::mbps(10), 10); },
                    "whole packet count");
  expect_throw_with([] { parse_buffer_bytes("1.5", Rate::mbps(10), 10); },
                    "whole packet count");
  expect_throw_with([] { parse_buffer_bytes("-5", Rate::mbps(10), 10); },
                    "whole packet count");
}

// The boundary values those diagnostics guard are still accepted.
TEST(SpecParse, BoundaryValuesStillParse) {
  EXPECT_DOUBLE_EQ(parse_flow("copa:loss=0").loss, 0.0);
  EXPECT_DOUBLE_EQ(parse_flow("copa:loss=1").loss, 1.0);
  EXPECT_DOUBLE_EQ(parse_flow("copa:start=0").start_s, 0.0);
  EXPECT_NE(make_jitter("const:0", 1), nullptr);
  EXPECT_NE(make_jitter("onoff:0,50,0", 1), nullptr);
  EXPECT_EQ(parse_buffer_bytes("1", Rate::mbps(10), 10), kMss);
}

TEST(SpecParse, EveryAdvertisedCcaInstantiates) {
  for (const auto& name : cca_names()) {
    EXPECT_NE(make_cca(name, 1), nullptr) << name;
  }
}

TEST(SpecParse, BufferSpecs) {
  EXPECT_EQ(parse_buffer_bytes("-", Rate::mbps(10), 10),
            ScenarioConfig{}.buffer_bytes);
  EXPECT_EQ(parse_buffer_bytes("100", Rate::mbps(10), 10), 100 * kMss);
  // 2 BDP at 10 Mbit/s x 10 ms = 2 * 1.25e6 B/s * 0.01 s = 25000 bytes.
  EXPECT_EQ(parse_buffer_bytes("2bdp", Rate::mbps(10), 10), 25000u);
}

TEST(SpecParse, AxisValueLists) {
  EXPECT_EQ(parse_axis_values("1,2,4").size(), 3u);
  const auto lin = parse_axis_values("lin:0:10:5");
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[1], 2.5);
  const auto lg = parse_axis_values("log:1:100:3");
  ASSERT_EQ(lg.size(), 3u);
  EXPECT_NEAR(lg[1], 10.0, 1e-9);
  EXPECT_THROW(parse_axis_values("log:0:100:3"), SpecError);
  EXPECT_THROW(parse_axis_values("lin:0:1"), SpecError);
}

TEST(SweepGrid, ExpandsCartesianProductWithUniqueKeys) {
  SweepGrid g = small_grid();
  g.jitter = {"none", "quantize:10"};
  const auto points = g.expand();
  EXPECT_EQ(points.size(), 2u * 2u * 2u * 2u);  // flows x link x jitter x seed
  std::set<std::string> keys;
  for (const auto& p : points) keys.insert(p.key());
  EXPECT_EQ(keys.size(), points.size());
}

TEST(SweepGrid, KeyIsCanonicalAndStable) {
  SweepPoint p;
  p.flow_set = "copa+copa";
  p.link_mbps = 120;
  p.rtt_ms = 60;
  p.jitter = "none";
  p.buffer = "-";
  p.seed = 3;
  p.duration_s = 60;
  p.warmup_s = 10;
  EXPECT_EQ(p.key(),
            "flows=copa+copa|link=120|rtt=60|jit=none|buf=-|seed=3|dur=60"
            "|warm=10");
}

TEST(SweepGrid, RejectsBadSpecsBeforeRunning) {
  SweepGrid g = small_grid();
  g.flow_sets.push_back("nosuchcca");
  EXPECT_THROW(g.expand(), SpecError);
  g = small_grid();
  g.jitter = {"warble:1"};
  EXPECT_THROW(g.expand(), SpecError);
}

TEST(SweepRecord, JsonRoundTrip) {
  SweepRecord r;
  r.key = "flows=copa|link=60|rtt=60|jit=none|buf=-|seed=1|dur=60|warm=10";
  r.ccas = {"copa", "bbr"};
  r.throughput_mbps = {1.25, 58.7512345};
  r.min_mbps = 1.25;
  r.max_mbps = 58.7512345;
  r.starvation_ratio = 47.0009876;
  r.jain = 0.52;
  r.utilization = 0.999;
  r.mean_rtt_ms = {61.5, 63.25};
  r.d_min_ms = {60.1, 60.2};
  r.d_max_ms = {70.5, 71.5};
  r.qdelay_mean_ms = 2.375;
  r.qdelay_max_ms = 11.5;
  r.retransmits = 12;
  r.timeouts = 1;

  const std::string line = r.to_json();
  const auto back = SweepRecord::from_json(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, r.key);
  EXPECT_EQ(back->ccas, r.ccas);
  EXPECT_EQ(back->throughput_mbps, r.throughput_mbps);
  EXPECT_EQ(back->mean_rtt_ms, r.mean_rtt_ms);
  EXPECT_EQ(back->retransmits, r.retransmits);
  // Reserialization is a fixed point: canonical bytes in, same bytes out.
  EXPECT_EQ(back->to_json(), line);
}

TEST(SweepRecord, RejectsMalformedLines) {
  EXPECT_FALSE(SweepRecord::from_json("").has_value());
  EXPECT_FALSE(SweepRecord::from_json("{\"key\":\"k\"}").has_value());
  EXPECT_FALSE(SweepRecord::from_json("not json at all").has_value());
}

TEST(ResultCache, StoreLookupAndCollisionSafety) {
  TempDir dir("cache");
  ResultCache cache(dir.str());
  SweepRecord r;
  r.key = "flows=copa|link=60";
  r.ccas = {"copa"};
  r.throughput_mbps = {1.0};
  cache.store(r.key, r.to_json());
  const auto hit = cache.lookup(r.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, r.to_json());
  // A different key (even one hashing to another file) misses.
  EXPECT_FALSE(cache.lookup("flows=bbr|link=60").has_value());
  // A stored record whose embedded key disagrees (hash collision stand-in)
  // is treated as a miss, not returned as the wrong point's result.
  ResultCache other(dir.str());
  std::ofstream(other.path_for("some-other-key"))
      << r.to_json() << "\n";
  EXPECT_FALSE(other.lookup("some-other-key").has_value());
}

TEST(ResultCache, DisabledCacheIsInert) {
  ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.store("k", "{}");
  EXPECT_FALSE(cache.lookup("k").has_value());
}

TEST(ParallelFor, CoversAllIndicesAndPropagatesErrors) {
  std::vector<int> hits(100, 0);
  parallel_for(hits.size(), 4, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

// Acceptance: every --jobs level produces byte-identical JSONL records for
// the same grid. Exercised at 1/2/8 so the per-worker-thread event pools
// (thread_local in run_point) are covered at under-, exactly-, and over-
// subscribed thread counts.
TEST(SweepEngine, JobLevelsOneTwoEightMatchByteForByte) {
  const auto points = small_grid().expand();
  SweepOptions serial;
  serial.jobs = 1;
  const auto a = run_sweep(points, serial);
  ASSERT_EQ(a.records.size(), points.size());
  EXPECT_EQ(a.stats.simulated, points.size());
  std::ostringstream ja;
  write_jsonl(ja, a);
  for (size_t jobs : {2u, 8u}) {
    SweepOptions parallel;
    parallel.jobs = jobs;
    const auto b = run_sweep(points, parallel);
    ASSERT_EQ(a.lines.size(), b.lines.size()) << "jobs=" << jobs;
    for (size_t i = 0; i < a.lines.size(); ++i) {
      EXPECT_EQ(a.lines[i], b.lines[i])
          << "jobs=" << jobs << " point " << points[i].key();
    }
    EXPECT_EQ(b.stats.simulated, points.size());
    std::ostringstream jb;
    write_jsonl(jb, b);
    EXPECT_EQ(ja.str(), jb.str()) << "jobs=" << jobs;
  }
}

// Two consecutive in-process runs are byte-identical too: the reused
// thread-local event pools (warm free lists, non-zero recycled storage)
// must not leak any state that affects results.
TEST(SweepEngine, RepeatedInProcessRunsAreByteIdentical) {
  const auto points = small_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  const auto first = run_sweep(points, opt);
  const auto second = run_sweep(points, opt);
  ASSERT_EQ(first.lines.size(), second.lines.size());
  EXPECT_EQ(first.lines, second.lines);
  std::ostringstream j1, j2;
  write_jsonl(j1, first);
  write_jsonl(j2, second);
  EXPECT_EQ(j1.str(), j2.str());
}

// Acceptance: a repeated invocation against a warm cache re-simulates zero
// points and returns the identical records.
TEST(SweepEngine, WarmCacheSimulatesNothing) {
  TempDir dir("warm");
  const auto points = small_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir.str();
  const auto cold = run_sweep(points, opt);
  EXPECT_EQ(cold.stats.simulated, points.size());
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  const auto warm = run_sweep(points, opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.cache_hits, points.size());
  EXPECT_EQ(warm.lines, cold.lines);
}

// A partially-filled cache (an interrupted sweep) resumes: only the
// missing points are simulated.
TEST(SweepEngine, PartialCacheResumesRemainder) {
  TempDir dir("partial");
  const auto points = small_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir.str();
  const auto full = run_sweep(points, opt);
  // Evict half the entries, as if the first run had been interrupted.
  ResultCache cache(dir.str());
  for (size_t i = 0; i < points.size(); i += 2) {
    std::filesystem::remove(cache.path_for(points[i].key()));
  }
  const auto resumed = run_sweep(points, opt);
  EXPECT_EQ(resumed.stats.simulated, (points.size() + 1) / 2);
  EXPECT_EQ(resumed.stats.cache_hits, points.size() / 2);
  EXPECT_EQ(resumed.lines, full.lines);
}

TEST(SweepEngine, RequestStopSkipsRemainingPoints) {
  clear_stop();
  request_stop();
  const auto points = small_grid().expand();
  const auto out = run_sweep(points, SweepOptions{});
  EXPECT_TRUE(out.interrupted);
  EXPECT_EQ(out.records.size(), 0u);
  EXPECT_EQ(out.stats.skipped, points.size());
  clear_stop();
}

namespace {

// Grid whose jitter axis mixes shareable (late-onset / none) and
// unshareable (immediately active) specs — the shape --share-prefix is
// built for: one warm-up, many onset variants.
SweepGrid share_grid() {
  SweepGrid g;
  g.flow_sets = {"copa+copa"};
  g.link_mbps = {24};
  g.rtt_ms = {20};
  g.jitter = {"none", "step:4,2", "step:8,4", "const:2"};
  g.duration_s = {6};
  g.seeds = {1};
  return g;
}

}  // namespace

TEST(PrefixPlan, JitterActivationTimes) {
  EXPECT_EQ(jitter_activation("none"), TimeNs::infinite());
  EXPECT_EQ(jitter_activation(""), TimeNs::infinite());
  EXPECT_EQ(jitter_activation("step:8,5"), TimeNs::seconds(5));
  EXPECT_EQ(jitter_activation("step:8,0"), TimeNs::zero());
  EXPECT_EQ(jitter_activation("const:2"), TimeNs::zero());
  EXPECT_EQ(jitter_activation("uniform:3"), TimeNs::zero());
}

TEST(PrefixPlan, GroupsByStemSignature) {
  auto g = share_grid();
  g.seeds = {1, 2};
  const auto points = g.expand();  // 4 jitter x 2 seeds
  const PrefixPlan plan = plan_prefix_sharing(points);
  // One group per seed (none + two steps); the const:2 points run cold.
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.solo.size(), 2u);
  for (const auto& grp : plan.groups) {
    EXPECT_EQ(grp.members.size(), 3u);
    // Stem stops 1 ns before the earliest onset (step:4,2).
    EXPECT_EQ(grp.fork_at, TimeNs::seconds(2) - TimeNs::nanos(1));
    uint64_t seed = 0;
    for (size_t i : grp.members) {
      if (seed == 0) seed = points[i].seed;
      EXPECT_EQ(points[i].seed, seed);  // no cross-seed grouping
      EXPECT_NE(points[i].jitter, "const:2");
    }
  }
}

TEST(PrefixPlan, FlowLevelJitterOverrideDisablesSharing) {
  // datajitter= on flow 0 makes the grid's jitter axis inert, so these
  // points must not be grouped around a jitter-free stem.
  SweepGrid g = share_grid();
  g.flow_sets = {"copa:datajitter=const:1+copa"};
  const auto points = g.expand();
  const PrefixPlan plan = plan_prefix_sharing(points);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.solo.size(), points.size());
}

// Acceptance: --share-prefix changes wall-clock work, never bytes. Every
// record from the forked path must equal the cold-run record exactly —
// this exercises snapshot/fork end to end including the measurement
// pipeline (stats time series restored across the fork).
TEST(SweepEngine, SharePrefixRecordsMatchColdByteForByte) {
  const auto points = share_grid().expand();
  SweepOptions cold;
  cold.jobs = 2;
  const auto a = run_sweep(points, cold);
  ASSERT_EQ(a.records.size(), points.size());
  EXPECT_EQ(a.stats.simulated, points.size());
  EXPECT_EQ(a.stats.forked, 0u);

  SweepOptions shared = cold;
  shared.share_prefix = true;
  const auto b = run_sweep(points, shared);
  ASSERT_EQ(b.lines.size(), a.lines.size());
  for (size_t i = 0; i < a.lines.size(); ++i) {
    EXPECT_EQ(a.lines[i], b.lines[i]) << points[i].key();
  }
  // none + step:4,2 + step:8,4 fork from one stem; const:2 runs cold.
  EXPECT_EQ(b.stats.forked, 3u);
  EXPECT_EQ(b.stats.simulated, 1u);
  EXPECT_EQ(b.stats.simulated + b.stats.cache_hits + b.stats.forked +
                b.stats.skipped,
            b.stats.total);
}

// Sharing composes with the cache: forked records are stored like any
// other, and a warm cache never rebuilds a stem.
TEST(SweepEngine, SharePrefixWarmCacheSimulatesNothing) {
  TempDir dir("share_warm");
  const auto points = share_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir.str();
  opt.share_prefix = true;
  const auto cold = run_sweep(points, opt);
  EXPECT_EQ(cold.stats.forked, 3u);
  const auto warm = run_sweep(points, opt);
  EXPECT_EQ(warm.stats.cache_hits, points.size());
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.forked, 0u);
  EXPECT_EQ(warm.lines, cold.lines);
}

// Satellite fix: the completion counters must add up no matter how a point
// completed — including when a cache entry exists but is truncated/corrupt
// (it must count as a miss and be re-simulated, not as a silent cache hit
// or a phantom record).
TEST(SweepEngine, StatsStayConsistentAcrossCorruptCacheEntries) {
  TempDir dir("corrupt");
  const auto points = small_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir.str();
  const auto cold = run_sweep(points, opt);
  ASSERT_EQ(cold.records.size(), points.size());

  // Truncate one entry mid-line and replace another with garbage.
  ResultCache cache(dir.str());
  {
    const auto full = cache.lookup(points[0].key());
    ASSERT_TRUE(full.has_value());
    std::ofstream(cache.path_for(points[0].key()))
        << full->substr(0, full->size() / 2);
  }
  std::ofstream(cache.path_for(points[1].key())) << "not a record\n";

  const auto again = run_sweep(points, opt);
  EXPECT_EQ(again.stats.simulated, 2u);
  EXPECT_EQ(again.stats.cache_hits, points.size() - 2);
  EXPECT_EQ(again.stats.skipped, 0u);
  EXPECT_EQ(again.stats.done(), again.records.size());
  EXPECT_EQ(again.stats.simulated + again.stats.cache_hits +
                again.stats.forked + again.stats.skipped,
            again.stats.total);
  EXPECT_EQ(again.lines, cold.lines);  // re-simulation reproduces the bytes
}

TEST(SweepEngine, ProfileRecordsEveryPointAndItsCompletionKind) {
  TempDir dir("profile");
  const auto points = small_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir.str();
  opt.profile = true;
  const auto cold = run_sweep(points, opt);
  ASSERT_TRUE(cold.profile.enabled);
  ASSERT_EQ(cold.profile.points.size(), points.size());
  for (const auto& p : cold.profile.points) {
    EXPECT_EQ(p.how, 'r');
    EXPECT_GE(p.wall_ms, 0.0);
    EXPECT_GE(p.worker, 0);
  }
  EXPECT_GT(cold.profile.wall_ms, 0.0);
  EXPECT_FALSE(cold.profile.workers.empty());

  const auto warm = run_sweep(points, opt);
  ASSERT_EQ(warm.profile.points.size(), points.size());
  for (const auto& p : warm.profile.points) EXPECT_EQ(p.how, 'c');

  // Profiling is observation-only: records are byte-identical to an
  // unprofiled run's.
  SweepOptions plain;
  plain.jobs = 2;
  const auto base = run_sweep(points, plain);
  EXPECT_EQ(base.lines, cold.lines);
  EXPECT_FALSE(base.profile.enabled);
}

// Telemetry-enabled sweeps: first_crossing_s lands in the record, the key
// carries the window/threshold suffix (so plain and telemetry caches never
// mix), and results are deterministic.
TEST(SweepEngine, TelemetrySweepExportsFirstCrossingDeterministically) {
  SweepPoint p;
  p.flow_set =
      "copa-default:rtt=59:datajitter=allbutone:1,0.15"
      "+copa-default:rtt=59:datajitter=const:1";
  p.link_mbps = 120;
  p.rtt_ms = 60;
  p.jitter = "none";
  p.buffer = "-";
  p.seed = 1;
  p.duration_s = 20;
  p.warmup_s = 5;

  const SweepRecord a = run_point_telemetry(p, 1000, 2.0);
  const SweepRecord b = run_point_telemetry(p, 1000, 2.0);
  ASSERT_TRUE(a.first_crossing_s.has_value());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.key, p.key() + "|swin=1000|sthr=2");
  // This is the §5.1 min-RTT attack: the victim starves, so the sliding
  // window must cross the threshold at some definite time.
  EXPECT_GT(*a.first_crossing_s, 0.0);
  EXPECT_LT(*a.first_crossing_s, p.duration_s);

  // The plain record has no crossing field and a plain key.
  const SweepRecord plain = run_point(p);
  EXPECT_FALSE(plain.first_crossing_s.has_value());
  EXPECT_EQ(plain.key, p.key());

  // JSONL round trip preserves the field.
  const auto back = SweepRecord::from_json(a.to_json());
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->first_crossing_s.has_value());
  EXPECT_DOUBLE_EQ(*back->first_crossing_s, *a.first_crossing_s);
}

TEST(SweepEngine, TelemetrySweepDisablesPrefixSharing) {
  const auto points = share_grid().expand();
  SweepOptions opt;
  opt.jobs = 2;
  opt.share_prefix = true;
  opt.starvation_window_ms = 500;
  const auto out = run_sweep(points, opt);
  ASSERT_EQ(out.records.size(), points.size());
  EXPECT_EQ(out.stats.forked, 0u);  // sharing forced off under telemetry
  EXPECT_EQ(out.stats.simulated, points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(out.records[i].first_crossing_s.has_value())
        << points[i].key();
    EXPECT_EQ(out.records[i].key,
              effective_key(points[i], opt));
  }
}

TEST(SweepEngine, RecordMeasuresStarvation) {
  // One victim Copa with the §5.1 min-RTT attack vs one clean Copa: the
  // engine's record should show a large starvation ratio on its own.
  SweepPoint p;
  p.flow_set =
      "copa-default:rtt=59:datajitter=allbutone:1,0.15"
      "+copa-default:rtt=59:datajitter=const:1";
  p.link_mbps = 120;
  p.rtt_ms = 60;
  p.jitter = "none";
  p.buffer = "-";
  p.seed = 1;
  p.duration_s = 20;
  p.warmup_s = 5;
  const SweepRecord rec = run_point(p);
  ASSERT_EQ(rec.throughput_mbps.size(), 2u);
  EXPECT_GT(rec.starvation_ratio, 3.0);
  EXPECT_LT(rec.jain, 0.95);
  EXPECT_GT(rec.utilization, 0.5);
  EXPECT_EQ(rec.key, p.key());
}
