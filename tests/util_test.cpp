// Unit tests for src/util: time/rate arithmetic, filters, stats, series.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/filters.hpp"
#include "util/rate.hpp"
#include "util/rng.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

TEST(TimeNs, FactoryConversions) {
  EXPECT_EQ(TimeNs::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(TimeNs::millis(2).ns(), 2'000'000);
  EXPECT_EQ(TimeNs::micros(3).ns(), 3'000);
  EXPECT_DOUBLE_EQ(TimeNs::millis(250).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(TimeNs::seconds(0.004).to_millis(), 4.0);
}

TEST(TimeNs, Arithmetic) {
  const TimeNs a = TimeNs::millis(10);
  const TimeNs b = TimeNs::millis(4);
  EXPECT_EQ((a + b).to_millis(), 14.0);
  EXPECT_EQ((a - b).to_millis(), 6.0);
  EXPECT_EQ((a * 2.5).to_millis(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(ccstarve::min(a, b), b);
  EXPECT_EQ(ccstarve::max(a, b), a);
  EXPECT_LT(-a, TimeNs::zero());
}

TEST(TimeNs, InfiniteIsSticky) {
  EXPECT_TRUE(TimeNs::infinite().is_infinite());
  EXPECT_FALSE(TimeNs::seconds(1e6).is_infinite());
  EXPECT_GT(TimeNs::infinite(), TimeNs::seconds(1e9));
}

TEST(TimeNs, ToString) {
  EXPECT_EQ(TimeNs::millis(12.5).to_string(), "12.500ms");
  EXPECT_EQ(TimeNs::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(TimeNs::nanos(5).to_string(), "5ns");
}

TEST(Rate, Conversions) {
  EXPECT_DOUBLE_EQ(Rate::mbps(120).bits_per_sec(), 120e6);
  EXPECT_DOUBLE_EQ(Rate::mbps(120).bytes_per_second(), 15e6);
  EXPECT_DOUBLE_EQ(Rate::bytes_per_sec(1000).bits_per_sec(), 8000);
  EXPECT_DOUBLE_EQ(Rate::kbps(500).to_mbps(), 0.5);
}

TEST(Rate, TransmissionTime) {
  // 1500 bytes at 12 Mbit/s = 1 ms.
  EXPECT_EQ(Rate::mbps(12).transmission_time(1500).to_millis(), 1.0);
  EXPECT_EQ(Rate::infinite().transmission_time(1500), TimeNs::zero());
}

TEST(Rate, FromBytesOver) {
  const Rate r = Rate::from_bytes_over(15'000'000, TimeNs::seconds(1));
  EXPECT_DOUBLE_EQ(r.to_mbps(), 120.0);
  EXPECT_TRUE(Rate::from_bytes_over(1, TimeNs::zero()).is_infinite());
}

TEST(Rate, BytesIn) {
  EXPECT_DOUBLE_EQ(Rate::mbps(8).bytes_in(TimeNs::seconds(2)), 2e6);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.02);
  EXPECT_NEAR(hits / 100000.0, 0.02, 0.005);
}

TEST(Rng, NextBelow) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(WindowedMin, TracksWindow) {
  WindowedMin<double> f(TimeNs::seconds(1));
  f.update(5.0, TimeNs::seconds(0));
  f.update(3.0, TimeNs::seconds(0.5));
  EXPECT_EQ(f.get(TimeNs::seconds(0.5)).value(), 3.0);
  // The 3.0 sample expires at t=1.6.
  f.update(7.0, TimeNs::seconds(1.4));
  EXPECT_EQ(f.get(TimeNs::seconds(1.4)).value(), 3.0);
  EXPECT_EQ(f.get(TimeNs::seconds(1.6)).value(), 7.0);
}

TEST(WindowedMin, EmptyAfterExpiry) {
  WindowedMin<int> f(TimeNs::millis(10));
  f.update(1, TimeNs::zero());
  EXPECT_FALSE(f.get(TimeNs::seconds(1)).has_value());
}

TEST(WindowedMax, TracksWindow) {
  WindowedMax<double> f(TimeNs::seconds(1));
  f.update(5.0, TimeNs::seconds(0));
  f.update(9.0, TimeNs::seconds(0.2));
  f.update(4.0, TimeNs::seconds(0.4));
  EXPECT_EQ(f.get(TimeNs::seconds(0.4)).value(), 9.0);
  // The 9.0 sample expires after t = 1.2; 4.0 remains until t = 1.4.
  EXPECT_EQ(f.get(TimeNs::seconds(1.3)).value(), 4.0);
  EXPECT_FALSE(f.get(TimeNs::seconds(1.5)).has_value());
}

TEST(WindowedFilters, RebaseShiftsExpiry) {
  WindowedMin<double> f(TimeNs::seconds(1));
  f.update(2.0, TimeNs::seconds(10));
  f.rebase_time(TimeNs::seconds(-10));
  EXPECT_EQ(f.get(TimeNs::seconds(0.5)).value(), 2.0);
  EXPECT_FALSE(f.get(TimeNs::seconds(2)).has_value());
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  for (int i = 0; i < 50; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, FirstSampleSets) {
  Ewma e(0.1);
  e.update(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(JainIndex, Extremes) {
  EXPECT_DOUBLE_EQ(jain_index({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jain_index({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
}

TEST(TimeSeries, InterpolationAndClamping) {
  TimeSeries ts;
  ts.add(TimeNs::seconds(1), 10.0);
  ts.add(TimeNs::seconds(3), 30.0);
  EXPECT_DOUBLE_EQ(ts.at(TimeNs::seconds(2)), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(TimeNs::seconds(0)), 10.0);   // clamped low
  EXPECT_DOUBLE_EQ(ts.at(TimeNs::seconds(5)), 30.0);   // clamped high
  EXPECT_DOUBLE_EQ(ts.step_at(TimeNs::seconds(2.9)), 10.0);
}

TEST(TimeSeries, RangeQueries) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) {
    ts.add(TimeNs::seconds(i), static_cast<double>(i % 4));
  }
  EXPECT_DOUBLE_EQ(ts.min_over(TimeNs::seconds(1), TimeNs::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_over(TimeNs::seconds(1), TimeNs::seconds(5)), 3.0);
  EXPECT_NEAR(ts.mean_over(TimeNs::seconds(0), TimeNs::seconds(10)),
              (0 + 1 + 2 + 3 + 0 + 1 + 2 + 3 + 0 + 1 + 2) / 11.0, 1e-12);
}

TEST(TimeSeries, ShiftedWindow) {
  TimeSeries ts;
  ts.add(TimeNs::seconds(0), 0.0);
  ts.add(TimeNs::seconds(10), 100.0);
  ts.add(TimeNs::seconds(20), 200.0);
  const TimeSeries w = ts.shifted_window(TimeNs::seconds(5), TimeNs::seconds(15));
  EXPECT_DOUBLE_EQ(w.at(TimeNs::zero()), 50.0);   // interpolated anchor
  EXPECT_DOUBLE_EQ(w.at(TimeNs::seconds(5)), 100.0);
  EXPECT_EQ(w.back_time(), TimeNs::seconds(5));
}

TEST(TimeSeries, CsvOutput) {
  TimeSeries ts;
  ts.add(TimeNs::seconds(1), 2.5);
  std::ostringstream os;
  ts.write_csv(os, "value");
  EXPECT_EQ(os.str(), "time_s,value\n1,2.5\n");
}

TEST(Table, AlignedOutput) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a | bb |"), std::string::npos);
  EXPECT_NE(os.str().find("| 1 | 2  |"), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

// ---------------------------------------------------------------------------
// cli::Flags — the shared tools/ flag dialect

namespace {
// parse() takes argc/argv; build them from a vector for the tests.
void parse_args(const cli::Flags& flags, std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("test")};
  for (auto& a : args) argv.push_back(a.data());
  flags.parse(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(CliFlags, TypedValuesSwitchesAndRepeats) {
  double link = 0;
  uint64_t seed = 0;
  int jobs = 0;
  std::string out;
  bool check = false;
  std::vector<std::string> flows;
  cli::Flags flags("test");
  flags.value("--link", &link);
  flags.value("--seed", &seed);
  flags.value("--jobs", &jobs);
  flags.value("--out", &out);
  flags.toggle("--check", &check);
  flags.each("--flow", [&](const std::string& v) { flows.push_back(v); });
  parse_args(flags, {"--link=120.5", "--seed=42", "--jobs=-2", "--out=a.jsonl",
                     "--check", "--flow=copa", "--flow=bbr:loss=0.01"});
  EXPECT_DOUBLE_EQ(link, 120.5);
  EXPECT_EQ(seed, 42u);
  EXPECT_EQ(jobs, -2);
  EXPECT_EQ(out, "a.jsonl");
  EXPECT_TRUE(check);
  ASSERT_EQ(flows.size(), 2u);  // repeats preserved in order
  EXPECT_EQ(flows[0], "copa");
  EXPECT_EQ(flows[1], "bbr:loss=0.01");
}

TEST(CliFlags, RejectsMalformedInput) {
  double v = 0;
  bool b = false;
  cli::Flags flags("test");
  flags.value("--num", &v);
  flags.toggle("--flag", &b);
  EXPECT_THROW(parse_args(flags, {"--nope=1"}), cli::UsageError);
  EXPECT_THROW(parse_args(flags, {"--num=abc"}), cli::UsageError);
  EXPECT_THROW(parse_args(flags, {"--num=1.5x"}), cli::UsageError);
  EXPECT_THROW(parse_args(flags, {"--num="}), cli::UsageError);
  EXPECT_THROW(parse_args(flags, {"--flag=yes"}), cli::UsageError);
  EXPECT_THROW(parse_args(flags, {"stray"}), cli::UsageError);
}

TEST(CliFlags, OptionalValueAndPositionals) {
  bool profile = false;
  std::string profile_path = "unset";
  std::vector<std::string> args;
  cli::Flags flags("test");
  flags.optional_value("--profile", [&](const std::string& v) {
    profile = true;
    profile_path = v;
  });
  flags.positionals(&args);
  parse_args(flags, {"gen", "--profile", "constant", "12"});
  EXPECT_TRUE(profile);
  EXPECT_EQ(profile_path, "");  // bare use passes the empty string
  ASSERT_EQ(args.size(), 3u);   // flags and operands interleave freely
  EXPECT_EQ(args[0], "gen");
  EXPECT_EQ(args[2], "12");

  profile_path = "unset";
  parse_args(flags, {"--profile=prof.jsonl"});
  EXPECT_EQ(profile_path, "prof.jsonl");
}

}  // namespace
}  // namespace ccstarve
