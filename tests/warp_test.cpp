// Tests for the hybrid packet/fluid fast-forward engine (sim/warp) and the
// primitives it stands on: the online settling detector (core/settle), the
// fluid integrator's edge cases (core/fluid), and the snapshot time/credit
// shift. The two halves of the warp contract are pinned directly:
//
//   * when no warp fires, the hybrid driver's trace digest is byte-identical
//     to the pure packet run's (the chunked run_until and every refused
//     snapshot attempt must be inert);
//   * when warps fire, the starvation verdict and per-flow throughputs must
//     match the pure run within the engine's certified error budget, and no
//     warp may straddle a jitter onset or a caller epoch mark.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenarios.hpp"
#include "core/fluid.hpp"
#include "core/settle.hpp"
#include "obs/telemetry.hpp"
#include "sim/trace_probe.hpp"
#include "sim/warp/warp.hpp"
#include "util/time.hpp"

namespace ccstarve {
namespace {

// ---------------------------------------------------------------------------
// SettlingDetector

// Feeds `seconds` of a constant-RTT, constant-rate trajectory at 100 ms
// cadence (well above min_rtt_samples over the default 5 s window).
void feed_steady(SettlingDetector& d, double seconds, double rtt_s,
                 double rate_bytes_per_s) {
  for (int i = 0; i <= static_cast<int>(seconds * 10); ++i) {
    const TimeNs at = TimeNs::millis(100 * i);
    d.add_rtt(at, rtt_s);
    d.add_delivered(at, rate_bytes_per_s * at.to_seconds());
  }
}

TEST(SettlingDetectorTest, SettlesOnSteadyFeed) {
  SettlingDetector d;
  feed_steady(d, 8.0, 0.050, 1e6);
  EXPECT_TRUE(d.settled());
  // Window rate is the cumulative-counter slope across the window.
  EXPECT_NEAR(d.window_rate_bytes_per_s(), 1e6, 1e6 * 0.01);
  EXPECT_NEAR(d.rtt_mean_s(), 0.050, 1e-9);
}

TEST(SettlingDetectorTest, OscillatingRttNeverSettles) {
  SettlingDetector d;
  for (int i = 0; i <= 80; ++i) {
    const TimeNs at = TimeNs::millis(100 * i);
    // +-30% RTT swing: far outside the 10% band test.
    d.add_rtt(at, i % 2 == 0 ? 0.050 : 0.080);
    d.add_delivered(at, 1e6 * at.to_seconds());
  }
  EXPECT_FALSE(d.settled());
}

TEST(SettlingDetectorTest, SparseRttSamplesBlockSettling) {
  SettlingDetector d;  // min_rtt_samples = 16 over the 5 s window
  for (int i = 0; i <= 8; ++i) {
    const TimeNs at = TimeNs::seconds(i);
    d.add_rtt(at, 0.050);
    d.add_delivered(at, 1e6 * at.to_seconds());
  }
  EXPECT_FALSE(d.settled());
}

TEST(SettlingDetectorTest, AcceleratingRateBlocksSettling) {
  SettlingDetector d;
  for (int i = 0; i <= 80; ++i) {
    const TimeNs at = TimeNs::millis(100 * i);
    d.add_rtt(at, 0.050);
    // Quadratic delivered counter: second half-window rate is well above
    // the first's, so the half-window agreement test must fail.
    const double t = at.to_seconds();
    d.add_delivered(at, 1e5 * t * t);
  }
  EXPECT_FALSE(d.settled());
}

TEST(SettlingDetectorTest, ResetForgets) {
  SettlingDetector d;
  feed_steady(d, 8.0, 0.050, 1e6);
  ASSERT_TRUE(d.settled());
  d.reset();
  EXPECT_FALSE(d.settled());
  EXPECT_EQ(d.window_rate_bytes_per_s(), 0.0);
}

TEST(SettlingDetectorTest, EarliestSettledFindsFlattening) {
  // Ramp for 10 s, then perfectly flat: the earliest settled point must be
  // after the ramp but well before the end of the flat region.
  TimeSeries rtt, delivered;
  double total = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const TimeNs at = TimeNs::millis(100 * i);
    const double t = at.to_seconds();
    const double ramping = t < 10.0 ? (10.0 - t) / 10.0 : 0.0;
    rtt.add(at, 0.050 + 0.040 * ramping);
    total += 0.1 * 1e6 * (1.0 + ramping);
    delivered.add(at, total);
  }
  const TimeNs settled = earliest_settled(rtt, delivered, SettleConfig{});
  ASSERT_NE(settled, TimeNs(-1));
  EXPECT_GT(settled.to_seconds(), 10.0);
  EXPECT_LT(settled.to_seconds(), 20.0);

  // A trajectory that never flattens never settles.
  TimeSeries rtt2, del2;
  for (int i = 0; i <= 300; ++i) {
    const TimeNs at = TimeNs::millis(100 * i);
    rtt2.add(at, 0.050 * (1.0 + 0.5 * (i % 2)));
    del2.add(at, 1e6 * at.to_seconds());
  }
  EXPECT_EQ(earliest_settled(rtt2, del2, SettleConfig{}), TimeNs(-1));
}

// ---------------------------------------------------------------------------
// Fluid edge cases

TEST(FluidVegasTest, BandInteriorIsStationary) {
  // alpha = 4 pkts, beta = 6 pkts, Rm = 100 ms. A window that queues a
  // backlog strictly inside [alpha, beta] must have dwdt == 0; below alpha
  // it must grow, above beta shrink.
  const FluidVegas band(4.0, TimeNs::millis(100), 1.0, 6.0);
  const double rm = 0.100;
  // Pick (w, rtt) pairs with backlog = w*(rtt-rm)/rtt at known points.
  auto rtt_for = [&](double w, double backlog) { return rm * w / (w - backlog); };
  const double w = 100.0 * kMss;
  EXPECT_GT(band.dwdt(w, rtt_for(w, 2.0 * kMss), 0.0), 0.0);   // below alpha
  EXPECT_EQ(band.dwdt(w, rtt_for(w, 5.0 * kMss), 0.0), 0.0);   // inside band
  EXPECT_LT(band.dwdt(w, rtt_for(w, 8.0 * kMss), 0.0), 0.0);   // above beta

  // The default (beta < 0) collapses the band to the point alpha — the
  // historical closed-form behaviour.
  const FluidVegas point(4.0, TimeNs::millis(100));
  EXPECT_LT(point.dwdt(w, rtt_for(w, 5.0 * kMss), 0.0), 0.0);
}

TEST(FluidIntegrateTest, StepHalvingAgrees) {
  // RK4 self-consistency: halving dt from an off-equilibrium start barely
  // moves the endpoint. Two Vegas flows from asymmetric windows.
  std::vector<FluidFlowSpec> flows(2);
  flows[0].cca = flows[1].cca =
      std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  flows[0].rm = flows[1].rm = TimeNs::millis(100);
  const std::vector<double> w0 = {20.0 * kMss, 120.0 * kMss};
  const auto coarse = integrate_fluid(flows, Rate::mbps(20), w0, 0.002,
                                      TimeNs::seconds(20), TimeNs::millis(1));
  const auto fine = integrate_fluid(flows, Rate::mbps(20), w0, 0.002,
                                    TimeNs::seconds(20), TimeNs::micros(500));
  ASSERT_EQ(coarse.w_bytes.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(coarse.w_bytes[i], fine.w_bytes[i],
                0.01 * fine.w_bytes[i] + kMss);
  }
  EXPECT_NEAR(coarse.q_s, fine.q_s, 0.001);
}

TEST(FluidIntegrateTest, QueueStaysNonNegative) {
  // Under-utilizing windows drain the initial queue; the q >= 0 boundary
  // must clamp rather than go negative.
  std::vector<FluidFlowSpec> flows(1);
  flows[0].cca = std::make_shared<FluidVegas>(4.0, TimeNs::millis(100));
  flows[0].rm = TimeNs::millis(100);
  // ~1% of what a 50 Mbit/s link drains per RTT.
  const std::vector<double> w0 = {4.0 * kMss};
  const auto r = integrate_fluid(flows, Rate::mbps(50), w0, 0.050,
                                 TimeNs::seconds(5), TimeNs::millis(1));
  EXPECT_GE(r.q_s, 0.0);
  EXPECT_LT(r.q_s, 0.001);  // fully drained
  EXPECT_GT(r.w_bytes[0], w0[0]);  // and the flow kept growing toward alpha
}

// ---------------------------------------------------------------------------
// shift_snapshot

golden::GoldenSpec two_vegas(double duration_s) {
  golden::GoldenSpec s;
  s.name = "warp_two_vegas";
  s.flow_set = "vegas+vegas";
  s.link_mbps = 48;
  s.rtt_ms = 40;
  s.duration_s = duration_s;
  return s;
}

TEST(ShiftSnapshotTest, ZeroShiftForkIsByteIdentical) {
  const golden::GoldenSpec spec = two_vegas(8);
  const TimeNs mid = TimeNs::seconds(5);
  const TimeNs end = TimeNs::seconds(8);

  auto sc = golden::build_golden(spec);
  sc->run_until(mid);
  ScenarioSnapshot snap = sc->snapshot();
  warp::shift_snapshot(snap, TimeNs::zero(), {0, 0});

  TraceRecorder cont;
  sc->sim().set_tracer(&cont);
  sc->run_until(end);

  auto forked = Scenario::fork(snap);
  TraceRecorder fd;
  forked->sim().set_tracer(&fd);
  forked->run_until(end);

  EXPECT_EQ(cont.digest_hex(), fd.digest_hex());
  EXPECT_EQ(cont.records(), fd.records());
}

TEST(ShiftSnapshotTest, ShiftedForkIsLegalAndAdvanced) {
  const golden::GoldenSpec spec = two_vegas(8);
  auto sc = golden::build_golden(spec);
  sc->run_until(TimeNs::seconds(5));
  const uint64_t pre0 = sc->sender(0).delivered_bytes();
  const uint64_t pre1 = sc->sender(1).delivered_bytes();

  ScenarioSnapshot snap = sc->snapshot();
  const TimeNs delta = TimeNs::seconds(600);
  const std::vector<uint64_t> credits = {1000 * kMss, 1200 * kMss};
  warp::shift_snapshot(snap, delta, credits);
  EXPECT_EQ(snap.at, TimeNs::seconds(5) + delta);

  auto forked = Scenario::fork(snap);
  EXPECT_EQ(forked->sim().now(), snap.at);
  // The credit moved each flow's cumulative delivered space forward.
  EXPECT_EQ(forked->sender(0).delivered_bytes(), pre0 + credits[0]);
  EXPECT_EQ(forked->sender(1).delivered_bytes(), pre1 + credits[1]);

  // The shifted state is a legal transport state: the invariant observers
  // accept a continued run and the conservation checkpoint passes.
  check::InvariantChecker ck;
  ck.attach(*forked);
  forked->run_until(snap.at + TimeNs::seconds(3));
  ck.checkpoint();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

// ---------------------------------------------------------------------------
// WarpRunner

TEST(WarpTest, LossRunIsRefusedAndByteIdentical) {
  // Random loss cannot be fast-forwarded: the run must be refused
  // structurally and stay byte-identical to the pure packet run.
  golden::GoldenSpec spec;
  spec.flow_set = "newreno+newreno";
  spec.link_mbps = 48;
  spec.rtt_ms = 60;
  spec.buffer = "1bdp";
  spec.duration_s = 12;
  const TimeNs end = TimeNs::seconds(spec.duration_s);

  auto pure = golden::build_golden(spec);
  TraceRecorder pr;
  pure->sim().set_tracer(&pr);
  pure->run_until(end);

  auto hybrid = golden::build_golden(spec);
  TraceRecorder hr;
  hybrid->sim().set_tracer(&hr);
  warp::WarpRunner runner(std::move(hybrid), warp::WarpConfig{});
  runner.run_until(end);

  EXPECT_EQ(runner.stats().warps, 0u);
  EXPECT_EQ(pr.digest_hex(), hr.digest_hex());
  EXPECT_EQ(pr.records(), hr.records());
}

TEST(WarpTest, WarpFiresAndMatchesPureThroughput) {
  const golden::GoldenSpec spec = two_vegas(60);
  const TimeNs end = TimeNs::seconds(spec.duration_s);

  auto pure = golden::build_golden(spec);
  pure->run_until(end);

  warp::WarpRunner runner(golden::build_golden(spec), warp::WarpConfig{});
  runner.run_until(end);
  const warp::WarpStats& st = runner.stats();
  EXPECT_GE(st.warps, 1u);
  EXPECT_GT(st.warped_seconds, 20.0);
  EXPECT_EQ(st.attempts, st.warps + st.refusals());
  EXPECT_EQ(runner.scenario().sim().now(), end);

  for (size_t i = 0; i < 2; ++i) {
    const double p =
        pure->throughput(i, TimeNs::zero(), end).bytes_per_second();
    const double h = runner.scenario()
                         .throughput(i, TimeNs::zero(), end)
                         .bytes_per_second();
    EXPECT_NEAR(h, p, 0.10 * p) << "flow " << i;
  }
}

TEST(WarpTest, WarpNeverStraddlesJitterOnset) {
  // Flow 0 gains 30 ms of step jitter at t = 18 s. Warps may fire before
  // and after the onset, but none may skip across it — and the starvation
  // verdict must match the pure packet run's.
  golden::GoldenSpec spec;
  spec.flow_set = "vegas:datajitter=step:30,18+vegas";
  spec.link_mbps = 48;
  spec.rtt_ms = 40;
  spec.duration_s = 40;
  const TimeNs end = TimeNs::seconds(spec.duration_s);
  const double onset_s = 18.0;

  auto pure = golden::build_golden(spec);
  obs::FlowTelemetry pure_tele;
  pure_tele.attach(*pure);
  pure->run_until(end);
  pure_tele.finish(end);

  obs::FlowTelemetry tele;
  std::vector<std::pair<double, double>> warps;
  auto hybrid = golden::build_golden(spec);
  tele.attach(*hybrid);
  warp::WarpRunner runner(std::move(hybrid), warp::WarpConfig{});
  runner.on_fork = [&](Scenario& fsc, TimeNs from, TimeNs to,
                       const std::vector<uint64_t>& credits) {
    tele.note_warp(fsc, from, to, credits);
    warps.emplace_back(from.to_seconds(), to.to_seconds());
  };
  runner.run_until(end);
  tele.finish(end);

  EXPECT_GE(runner.stats().warps, 1u);
  for (const auto& [from, to] : warps) {
    EXPECT_FALSE(from < onset_s && to > onset_s)
        << "warp " << from << " -> " << to << " straddles the onset";
  }

  // Verdict equivalence: did the worst-pair ratio ever cross the threshold?
  const bool pure_starved = pure_tele.starvation().first_crossing() != TimeNs(-1);
  const bool hybrid_starved = tele.starvation().first_crossing() != TimeNs(-1);
  EXPECT_EQ(hybrid_starved, pure_starved);

  // The telemetry seam re-synced cumulative counters across every fork:
  // at finish they equal the live senders' absolute counters.
  for (size_t i = 0; i < tele.flow_count(); ++i) {
    EXPECT_EQ(tele.flow(i).delivered_bytes,
              runner.scenario().sender(i).delivered_bytes());
  }
}

TEST(WarpTest, EpochMarksAreNeverStraddled) {
  // A caller-pinned epoch mark (e.g. a measurement-window edge) must bound
  // every warp exactly like a discovered jitter onset.
  const golden::GoldenSpec spec = two_vegas(45);
  const TimeNs end = TimeNs::seconds(spec.duration_s);
  const double mark_s = 20.0;

  warp::WarpConfig wc;
  wc.epoch_marks.push_back(TimeNs::seconds(mark_s));
  std::vector<std::pair<double, double>> warps;
  warp::WarpRunner runner(golden::build_golden(spec), std::move(wc));
  runner.on_fork = [&](Scenario&, TimeNs from, TimeNs to,
                       const std::vector<uint64_t>&) {
    warps.emplace_back(from.to_seconds(), to.to_seconds());
  };
  runner.run_until(end);

  EXPECT_GE(runner.stats().warps, 1u);
  for (const auto& [from, to] : warps) {
    EXPECT_FALSE(from < mark_s && to > mark_s)
        << "warp " << from << " -> " << to << " straddles the epoch mark";
  }
}

}  // namespace
}  // namespace ccstarve
