// ccstarve_client — command-line client for the ccstarve_serve daemon.
//
//   ccstarve_client --port=7787 run --flows=copa+copa --duration=30
//   ccstarve_client --port=7787 submit --kind=sweep
//       --flows='copa+copa;bbr+bbr' --link=20,60,120  (one line)
//   ccstarve_client --port=7787 status
//   ccstarve_client --port=7787 tail --job=3 > live.jsonl
//
// Subcommands (one positional):
//   ping                 round-trip check
//   submit               submit a job, print the server's job line
//   run                  submit a run job and immediately tail it: payload
//                        JSONL on stdout (byte-identical to what
//                        `ccstarve_run --metrics=-` would emit for the same
//                        spec), control lines on stderr
//   status               one line per job (or --job=<n> for one)
//   cancel --job=<n>     request cancellation
//   results --job=<n>    replay a job's retained output, then exit
//   tail --job=<n>       subscribe and stream until the job finishes;
//                        payload lines on stdout, control lines on stderr
//   shutdown             ask the daemon to stop
//
// Connection flags:
//   --host=<addr>        daemon address             (default 127.0.0.1)
//   --port=<n>           daemon port                (required)
//   --raw                tail/results/run: print control lines on stdout
//                        too, interleaved exactly as received
//
// Job spec flags (submit/run; see src/serve/jobs.hpp for the grammar):
//   --kind=<run|sweep>   job kind                   (default run)
//   --flows=<spec>       run: one flow set; sweep: ';'-separated sets
//   --link= --rtt= --duration=
//                        run: one number; sweep: axis list / lin: / log:
//   --jitter=<spec>      run: flow-0 data jitter; sweep: ';'-separated
//   --buffer=<spec>      run: one buffer spec; sweep: ';'-separated
//   --seed=<n>           run seed (default 0, like ccstarve_run)
//   --seeds=<list>       sweep seed axis (default 1)
//   --interval=<ms>      run telemetry cadence (default 10)
//   --check              run: attach the invariant checker
//   --jobs=<n>           sweep worker threads
//   --share-prefix       sweep: share warm-up prefixes
//   --warmup-frac=<f>    sweep measurement window start fraction
//   --starvation-window=<ms> --starvation-threshold=<x>
//                        sweep first-crossing telemetry
//   --flight             run: attach the flight recorder; the Chrome-trace
//                        dump streams on the channel between
//                        flight_begin/flight_end marker lines
//   --flight-trigger=<starvation|always|never> --flight-window=<s>
//   --flight-events=<n>  per-flow ring capacity (default 4096)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_client: %s\n", msg.c_str());
  std::exit(2);
}

// Reads one response line; dies on a dropped connection.
std::string read_response(serve::TcpConn& conn) {
  std::string line;
  if (!conn.read_line(&line)) die("connection closed by server");
  return line;
}

bool is_type(const std::string& line, const char* type) {
  const std::string prefix = std::string("{\"type\":\"") + type + "\"";
  return line.compare(0, prefix.size(), prefix) == 0;
}

// Streams until stream_end: payload to stdout, control to stderr (or
// everything to stdout with raw). Returns false if the stream ended with
// an error line.
bool pump_stream(serve::TcpConn& conn, bool raw) {
  std::string line;
  while (conn.read_line(&line)) {
    if (raw || !serve::is_control_line(line)) {
      std::printf("%s\n", line.c_str());
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    if (is_type(line, "stream_end")) return true;
    if (is_type(line, "error")) return false;
  }
  die("connection closed mid-stream");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned port = 0;
  bool raw = false;
  uint64_t job = 0;
  bool have_job = false;
  std::vector<std::string> positionals;

  // Job spec fields, forwarded verbatim as strings: Request::num falls
  // back to parsing string fields, so "60" and 60 mean the same to the
  // server, while axis lists like "20,60" survive untouched.
  struct Field {
    const char* flag;  // --flag
    const char* key;   // request key
  };
  static const Field kFields[] = {
      {"--kind", "kind"},          {"--flows", "flows"},
      {"--link", "link"},          {"--rtt", "rtt"},
      {"--duration", "duration"},  {"--jitter", "jitter"},
      {"--buffer", "buffer"},      {"--seed", "seed"},
      {"--seeds", "seeds"},        {"--interval", "interval"},
      {"--jobs", "jobs"},          {"--warmup-frac", "warmup_frac"},
      {"--starvation-window", "starvation_window"},
      {"--starvation-threshold", "starvation_threshold"},
      {"--flight-trigger", "flight_trigger"},
      {"--flight-window", "flight_window"},
      {"--flight-events", "flight_events"},
  };
  std::vector<std::pair<const Field*, std::string>> fields;
  bool check = false, share_prefix = false, flight = false;

  try {
    cli::Flags flags("ccstarve_client");
    flags.value("--host", &host);
    flags.value("--port", &port);
    flags.toggle("--raw", &raw);
    flags.each("--job", [&](const std::string& v) {
      job = std::stoull(v);
      have_job = true;
    });
    for (const Field& f : kFields) {
      flags.each(f.flag, [&fields, fp = &f](const std::string& v) {
        fields.emplace_back(fp, v);
      });
    }
    flags.toggle("--check", &check);
    flags.toggle("--share-prefix", &share_prefix);
    flags.toggle("--flight", &flight);
    flags.positionals(&positionals);
    flags.parse(argc, argv);

    if (positionals.size() != 1) {
      die("exactly one subcommand expected (try --help)");
    }
    const std::string& cmd = positionals[0];
    if (port == 0 || port > 65535) die("--port=<1..65535> is required");

    std::string error;
    serve::TcpConn conn =
        serve::tcp_connect(host, static_cast<uint16_t>(port), &error);
    if (!conn.valid()) die(error);
    const std::string hello = read_response(conn);
    if (!is_type(hello, "hello")) die("unexpected greeting: " + hello);

    // "run" is submit-a-run-job + tail in one connection; "tail" is the
    // protocol's "subscribe".
    const bool run_and_tail = cmd == "run";
    std::string wire_cmd = run_and_tail ? "submit" : cmd;
    if (wire_cmd == "tail") wire_cmd = "subscribe";

    serve::JsonObj req;
    req.str("cmd", wire_cmd);
    if (have_job) req.num("job", static_cast<double>(job));
    if (wire_cmd == "submit") {
      for (const auto& [f, v] : fields) req.str(f->key, v);
      if (check) req.num("check", 1);
      if (share_prefix) req.num("share_prefix", 1);
      if (flight) req.num("flight", 1);
    }
    if (!conn.write_line(req.done())) die("failed to send request");

    if (cmd == "status") {
      // One job line per job, then ok (or a single job line with --job).
      while (true) {
        const std::string line = read_response(conn);
        if (is_type(line, "error")) die(line);
        std::printf("%s\n", line.c_str());
        if (is_type(line, "ok") || have_job) break;
      }
      return 0;
    }

    const std::string resp = read_response(conn);
    if (is_type(resp, "error")) die(resp);

    if (cmd == "tail" || cmd == "results") {
      // resp was "subscribed" (tail) or the first replayed line (results).
      if (raw || !serve::is_control_line(resp)) {
        std::printf("%s\n", resp.c_str());
      } else {
        std::fprintf(stderr, "%s\n", resp.c_str());
      }
      if (is_type(resp, "stream_end")) return 0;
      return pump_stream(conn, raw) ? 0 : 1;
    }

    if (run_and_tail) {
      std::fprintf(stderr, "%s\n", resp.c_str());  // the job line
      // The job id is the "job" field of the response; re-request as a
      // subscription on the same connection.
      double id = 0;
      const std::string marker = "\"job\":";
      const size_t at = resp.find(marker);
      if (at == std::string::npos) die("no job id in: " + resp);
      id = std::strtod(resp.c_str() + at + marker.size(), nullptr);
      serve::JsonObj sub;
      sub.str("cmd", "subscribe").num("job", id);
      if (!conn.write_line(sub.done())) die("failed to subscribe");
      return pump_stream(conn, raw) ? 0 : 1;
    }

    std::printf("%s\n", resp.c_str());
    return 0;
  } catch (const cli::UsageError& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(e.what());
  }
}
