// ccstarve_fuzz — deterministic scenario fuzzer (src/check).
//
// Maps seeds to scenario specs over the sweep grammar, runs each under the
// runtime invariant observers plus metamorphic oracles (determinism,
// snapshot/fork byte-identity, flow-relabel symmetry, constant-jitter
// exactness), and on failure shrinks the spec to a minimal reproducer with
// a ready-to-paste command line.
//
//   ccstarve_fuzz --seeds=500 --time-budget=120s
//   ccstarve_fuzz --corpus=tests/fuzz_corpus/corpus.txt
//   ccstarve_fuzz --replay='7|copa+vegas|96|60|2bdp|0|0|0|1.2|0'
//
// Flags:
//   --seeds=<n>         number of generated cases          (default 200)
//   --start-seed=<n>    first seed                         (default 1)
//   --jobs=<n>          worker threads                     (default 1)
//   --time-budget=<s>   stop starting new cases after this many wall
//                       seconds ("120" or "120s"; default: none)
//   --corpus=<path>     replay a committed corpus (one case line per line;
//                       '#' comments) before the generated seeds
//   --replay=<line>     run exactly one case line, then exit
//   --repro-out=<path>  append shrunk failing case lines + repro commands
//   --no-metamorphic    invariants and determinism only (faster)
//   --no-telemetry      skip the flow-telemetry probe + its oracle
//   --no-flight         skip the flight-recorder probe + its export
//                       round-trip oracle (shrink replays preserve this)
//   --no-fast-forward   skip the warp-engine metamorphic oracle (hybrid
//                       run digest/verdict equivalence vs pure packet)
//   --no-shrink         report failures without minimising them
//
// Exit status: 0 all cases passed, 1 any failure, 2 usage error.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzzer.hpp"
#include "util/cli.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_fuzz: %s\n", msg.c_str());
  std::exit(2);
}

struct Failure {
  check::FuzzCase c;
  check::FuzzFailure f;
};

double parse_seconds(std::string v) {
  if (!v.empty() && v.back() == 's') v.pop_back();
  return std::stod(v);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 200, start_seed = 1;
  int jobs = 1;
  double time_budget_s = 0;  // 0 = unlimited
  std::string corpus_path, replay_line, repro_out;
  check::FuzzOptions opts;
  bool shrink = true;

  bool no_metamorphic = false, no_telemetry = false, no_shrink = false;
  bool no_fast_forward = false, no_flight = false;
  try {
    cli::Flags flags("ccstarve_fuzz");
    flags.value("--seeds", &seeds);
    flags.value("--start-seed", &start_seed);
    flags.value("--jobs", &jobs);
    flags.each("--time-budget",
               [&](const std::string& v) { time_budget_s = parse_seconds(v); });
    flags.value("--corpus", &corpus_path);
    flags.value("--replay", &replay_line);
    flags.value("--repro-out", &repro_out);
    flags.toggle("--no-metamorphic", &no_metamorphic);
    flags.toggle("--no-telemetry", &no_telemetry);
    flags.toggle("--no-flight", &no_flight);
    flags.toggle("--no-fast-forward", &no_fast_forward);
    flags.toggle("--no-shrink", &no_shrink);
    flags.parse(argc, argv);
  } catch (const cli::UsageError& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(e.what());
  }
  opts.metamorphic = !no_metamorphic;
  opts.telemetry = !no_telemetry;
  opts.flight = !no_flight;
  opts.fast_forward = !no_fast_forward;
  shrink = !no_shrink;
  if (jobs < 1) die("--jobs must be >= 1");

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };
  const auto out_of_budget = [&] {
    return time_budget_s > 0 && elapsed() > time_budget_s;
  };

  const auto report = [&](const Failure& fl) {
    std::printf("FAIL [%s] case: %s\n  %s\n", fl.f.oracle.c_str(),
                fl.c.to_line().c_str(), fl.f.detail.c_str());
    check::FuzzCase minimal = fl.c;
    check::FuzzFailure mf = fl.f;
    if (shrink) {
      std::printf("  shrinking...\n");
      minimal = check::shrink_case(fl.c, opts, &mf);
      std::printf("  shrunk [%s] to: %s\n  %s\n", mf.oracle.c_str(),
                  minimal.to_line().c_str(), mf.detail.c_str());
    }
    const std::string cmd = minimal.repro_command();
    std::printf("  repro: %s\n", cmd.c_str());
    if (!repro_out.empty()) {
      std::ofstream os(repro_out, std::ios::app);
      os << "# [" << mf.oracle << "] " << mf.detail << "\n"
         << minimal.to_line() << "\n# " << cmd << "\n";
    }
  };

  // --replay: exactly one case, verbose.
  if (!replay_line.empty()) {
    std::string err;
    const auto c = check::FuzzCase::from_line(replay_line, &err);
    if (!c.has_value()) die("bad --replay line: " + err);
    const auto r = check::run_case(*c, opts);
    if (!r.has_value()) {
      std::printf("PASS %s\n", c->to_line().c_str());
      return 0;
    }
    report({*c, *r});
    return 1;
  }

  std::vector<Failure> failures;
  std::mutex mu;
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> done{0};
  std::atomic<bool> stop{false};

  // Work items: corpus lines first, then generated seeds.
  std::vector<check::FuzzCase> work;
  if (!corpus_path.empty()) {
    std::ifstream is(corpus_path);
    if (!is) die("cannot open corpus " + corpus_path);
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::string err;
      const auto c = check::FuzzCase::from_line(line, &err);
      if (!c.has_value()) {
        die("corpus line " + std::to_string(lineno) + ": " + err);
      }
      work.push_back(*c);
    }
  }
  const size_t corpus_cases = work.size();
  for (uint64_t s = 0; s < seeds; ++s) {
    work.push_back(check::generate_case(start_seed + s));
  }

  const auto worker = [&] {
    for (;;) {
      const uint64_t i = next.fetch_add(1);
      if (i >= work.size() || stop.load() || out_of_budget()) return;
      const auto r = check::run_case(work[i], opts);
      ++done;
      if (r.has_value()) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back({work[i], *r});
        if (failures.size() >= 5) stop.store(true);  // enough to diagnose
      }
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  for (const Failure& fl : failures) report(fl);
  std::printf("%llu/%zu cases (%zu corpus + %llu generated), %zu failure(s), "
              "%.1fs\n",
              static_cast<unsigned long long>(done.load()), work.size(),
              corpus_cases, static_cast<unsigned long long>(seeds),
              failures.size(), elapsed());
  return failures.empty() ? 0 : 1;
}
