// ccstarve_report — figure-data generator.
//
// Turns the JSONL this repo's own tools emit into gnuplot/CSV figure data:
//
//   ccstarve_run --metrics=tele.jsonl ...     (flow-telemetry log)
//   ccstarve_sweep --out=sweep.jsonl ...      (sweep result records)
//   ccstarve_run --flight=flight.json ...     (flight trace, Chrome JSON)
//
//   ccstarve_report --in=tele.jsonl --mode=ratio --out=ratio.csv
//   ccstarve_report --in=sweep.jsonl --mode=rate-delay --out=fig3.csv
//   ccstarve_report --in=flight.json --mode=forensics
//
// Flags:
//   --in=<path>    input JSONL ("-" = stdin; stdin only supports one pass,
//                  so --mode=auto needs a real file)
//   --out=<path>   output CSV ("-" = stdout, the default)
//   --bucket=<s>   forensics bucket width in seconds          (default 0.1)
//   --mode=<m>     timeline | ratio | delay-dist | rate-delay | forensics |
//                  auto
//     timeline     per-bucket wide CSV: send/deliver/rtt/qdelay/cwnd per
//                  flow plus link queue delay and drops   (telemetry input)
//     ratio        starvation-ratio timeline; footer comments carry the
//                  first threshold crossing recomputed from the timeline,
//                  the log's end-of-run verdict with its receiver-limited
//                  vs congestion-limited classification, and agree=0/1;
//                  the verdict is also printed on stderr        (telemetry input)
//     delay-dist   per-flow rtt/qdelay distribution summaries
//                                                         (telemetry input)
//     rate-delay   Fig. 3-style scatter rows: one line per flow per grid
//                  point (throughput vs mean/trimmed RTT)     (sweep input)
//     forensics    binding-constraint timeline from a flight trace: which
//                  gate (cwnd-bound / rwnd-bound / pacing-bound / idle)
//                  dominated each bucket per flow, plus a "why flow F
//                  starved" summary keyed off the trace's starvation
//                  verdict                              (flight-JSON input)
//     auto         sniff the input kind and pick ratio (telemetry) or
//                  rate-delay (sweep)                         (default)
//
// Exit status: 0 on success, 1 when the input parses but yields no usable
// rows, 2 on usage/IO errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/flight_export.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_report: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, out_path = "-", mode = "auto";
  double bucket_s = 0.1;

  try {
    cli::Flags flags("ccstarve_report");
    flags.value("--in", &in_path);
    flags.value("--out", &out_path);
    flags.value("--mode", &mode);
    flags.value("--bucket", &bucket_s);
    flags.parse(argc, argv);
  } catch (const cli::UsageError& e) {
    die(e.what());
  }
  if (in_path.empty()) die("--in=<path> is required");
  if (mode != "auto" && mode != "timeline" && mode != "ratio" &&
      mode != "delay-dist" && mode != "rate-delay" && mode != "forensics") {
    die("unknown --mode '" + mode + "' (try --help)");
  }
  if (bucket_s <= 0) die("--bucket wants a positive width in seconds");

  // Slurp the input so auto-detection and parsing can both make a pass
  // (telemetry logs and sweep files are small relative to the runs that
  // produced them).
  std::stringstream input;
  if (in_path == "-") {
    input << std::cin.rdbuf();
  } else {
    std::ifstream is(in_path);
    if (!is) die("cannot open '" + in_path + "'");
    input << is.rdbuf();
  }

  if (mode == "auto") {
    std::istringstream sniff(input.str());
    const std::string kind = obs::detect_input_kind(sniff);
    if (kind == "telemetry") {
      mode = "ratio";
    } else if (kind == "sweep") {
      mode = "rate-delay";
    } else if (input.str().find("\"traceEvents\"") != std::string::npos) {
      mode = "forensics";
    } else {
      die("cannot detect input kind of '" + in_path +
          "' (neither a telemetry log nor sweep records)");
    }
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) die("cannot open '" + out_path + "' for writing");
    out = &out_file;
  }

  if (mode == "forensics") {
    std::istringstream in(input.str());
    std::string err;
    const std::optional<obs::FlightTrace> trace =
        obs::read_chrome_trace(in, &err);
    if (!trace) {
      std::fprintf(stderr, "ccstarve_report: '%s' is not a flight trace: %s\n",
                   in_path.c_str(), err.c_str());
      return 1;
    }
    obs::ForensicsOptions fo;
    fo.bucket_s = bucket_s;
    if (!obs::write_forensics(*out, *trace, fo)) {
      std::fprintf(stderr, "ccstarve_report: no flows in '%s'\n",
                   in_path.c_str());
      return 1;
    }
    return 0;
  }

  if (mode == "rate-delay") {
    std::istringstream in(input.str());
    if (!obs::write_rate_delay_csv(*out, in)) {
      std::fprintf(stderr, "ccstarve_report: no sweep records in '%s'\n",
                   in_path.c_str());
      return 1;
    }
    return 0;
  }

  std::istringstream in(input.str());
  const std::optional<obs::TelemetryLog> log = obs::TelemetryLog::read(in);
  if (!log) {
    std::fprintf(stderr, "ccstarve_report: '%s' is not a telemetry log\n",
                 in_path.c_str());
    return 1;
  }
  if (mode == "timeline") {
    obs::write_timeline_csv(*out, *log);
  } else if (mode == "ratio") {
    obs::write_ratio_csv(*out, *log);
    if (log->end.present && log->end.starved != 0.0) {
      const int victim = static_cast<int>(log->end.starved_flow);
      std::string label;
      if (victim >= 0 && static_cast<size_t>(victim) < log->labels.size())
        label = " (" + log->labels[static_cast<size_t>(victim)] + ")";
      std::fprintf(stderr, "ccstarve_report: starved=%s victim=flow %d%s\n",
                   log->end.starved_kind.c_str(), victim, label.c_str());
    }
  } else {
    obs::write_delay_dist_csv(*out, *log);
  }
  return 0;
}
