// ccstarve_run — command-line scenario runner.
//
// Assembles a multi-flow scenario from flags, runs it, prints a per-flow
// summary and (optionally) dumps per-flow RTT/throughput time series as CSV
// for plotting.
//
//   ccstarve_run --link=120 --rtt=60 --duration=60
//                --flow=copa --flow=copa:ackjitter=quantize:60
//                --csv=/tmp/out
//
// Flags:
//   --link=<Mbit/s>          bottleneck rate            (default 60)
//   --rtt=<ms>               propagation RTT            (default 60)
//   --duration=<s>           simulated seconds          (default 60)
//   --buffer=<pkts|Xbdp>     drop-tail buffer           (default: unbounded)
//   --ecn=<threshold pkts>   threshold ECN marking      (default: off)
//   --prefill=<bytes>        dummy bytes pre-loaded into the bottleneck
//   --jitter-budget=<ms>     the model's D: jitter boxes audit added delay
//                            against this bound         (default: unbounded)
//   --seed=<n>               base seed for randomized CCAs / loss / jitter
//                            (default 0; the fuzzer's shrunk repro commands
//                            pass the failing seed here)
//   --check                  attach the runtime invariant checker
//                            (src/check) and fail if any invariant or the
//                            end-of-run conservation checkpoint is violated
//   --fast-forward           hybrid packet/fluid execution (sim/warp):
//                            detect convergence online, certify it against
//                            the fluid models, and analytically skip the
//                            converged stretches. Starvation verdicts match
//                            pure packet runs within the engine's error
//                            budget; runs where no warp fires are
//                            byte-identical (same --trace-digest). The run
//                            summary gains a "warp:" line with warp/refusal
//                            counts.
//   --csv=<prefix>           write <prefix>.flowN.{rtt,rate}.csv
//   --metrics=<path>         attach the flow-telemetry probe (src/obs) and
//                            stream per-flow/link samples, the starvation-
//                            ratio timeline and end-of-run summaries there
//                            as JSONL ("-" = stdout). Feed the file to
//                            ccstarve_report for figure-ready CSV. The probe
//                            is observation-only: --trace-digest output is
//                            identical with and without it.
//   --metrics-interval=<ms>  telemetry sample cadence     (default 10)
//   --flight=<path>          attach the flight recorder (src/obs/flight) and
//                            export a Chrome trace-event JSON loadable in
//                            Perfetto: per-flow gate/instant tracks,
//                            cwnd/rwnd/inflight counter tracks, bottleneck
//                            queue track, starvation-verdict instant. Like
//                            --metrics the probe is observation-only:
//                            --trace-digest output is identical with and
//                            without it. Feed the JSON to
//                            `ccstarve_report forensics` for a binding-
//                            constraint timeline.
//   --flight-window=<s>      half-width of the export window around the
//                            first starvation crossing   (default 2)
//   --flight-trigger=starvation|always|never
//                            starvation: record continuously, export only
//                            [crossing-window, crossing+window] once the
//                            detector fires (the pre-trigger half survives
//                            in the ring). always: export everything
//                            retained. never: record but export nothing
//                            (cost measurement).
//   --trace-digest           print the golden-trace hash of the run (an
//                            order-sensitive digest of every packet event;
//                            equal digests <=> behaviourally identical runs)
//   --flow=<cca>[:opt=val]*[*<count>]  add a flow (or, with a trailing
//                            `*<count>`, a cohort of identical flows, e.g.
//                            --flow=copa*1000); repeatable. Options:
//       start=<s>        start time
//       rtt=<ms>         per-flow propagation RTT
//       loss=<frac>      random loss on the data path
//       ackjitter=<spec> jitter on the ACK path
//       datajitter=<spec> jitter on the data path
//       rwnd=<pkts>      receive-buffer size (enables receiver-side
//                        flow control; ACKs then advertise a window)
//       drain=<mbps>     application drain rate (default: instant)
//       drainburst=<pkts> packets consumed per application read (default 1)
//       wndupd=<0|1>     emit window-update ACKs (default 1; 0 models
//                        lost window updates: persist-probe-only recovery)
//     jitter specs: const:<ms> | uniform:<ms> | quantize:<ms> |
//                   onoff:<ms>,<on ms>,<off ms> | step:<ms>,<start s> |
//                   allbutone:<ms>,<exempt s>
//   CCAs: vegas fast copa copa-default bbr vivace allegro newreno cubic
//         ledbat verus delay-aimd jitter-aware ecn-reno const-cwnd
//
// The flow/jitter/buffer spec grammar lives in src/sweep/spec_parse and is
// shared with ccstarve_sweep, which runs whole grids of these scenarios.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "obs/telemetry.hpp"
#include "sim/scenario.hpp"
#include "sim/warp/warp.hpp"
#include "sweep/spec_parse.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_run: %s\n", msg.c_str());
  std::exit(2);
}

void dump_csv(const std::string& prefix, size_t i, const FlowStats& stats) {
  {
    std::ofstream os(prefix + ".flow" + std::to_string(i) + ".rtt.csv");
    stats.rtt_seconds.write_csv(os, "rtt_s");
  }
  {
    std::ofstream os(prefix + ".flow" + std::to_string(i) + ".delivered.csv");
    stats.delivered_bytes.write_csv(os, "delivered_bytes");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double link_mbps = 60, rtt_ms = 60, duration_s = 60;
  std::string buffer_spec, csv_prefix, metrics_path;
  std::string flight_path, flight_trigger_spec = "starvation";
  double flight_window_s = 2;
  double metrics_interval_ms = 10;
  double ecn_threshold_pkts = 0, jitter_budget_ms = 0;
  uint64_t prefill_bytes = 0, seed = 0;
  bool trace_digest = false, check = false, fast_forward = false;
  std::vector<sweep::FlowArgs> flows;

  try {
    cli::Flags flags("ccstarve_run");
    flags.value("--link", &link_mbps);
    flags.value("--rtt", &rtt_ms);
    flags.value("--duration", &duration_s);
    flags.value("--buffer", &buffer_spec);
    flags.value("--ecn", &ecn_threshold_pkts);
    flags.value("--prefill", &prefill_bytes);
    flags.value("--jitter-budget", &jitter_budget_ms);
    flags.value("--seed", &seed);
    flags.value("--csv", &csv_prefix);
    flags.value("--metrics", &metrics_path);
    flags.value("--metrics-interval", &metrics_interval_ms);
    flags.value("--flight", &flight_path);
    flags.value("--flight-window", &flight_window_s);
    flags.value("--flight-trigger", &flight_trigger_spec);
    flags.each("--flow", [&](const std::string& v) {
      for (auto& fa : sweep::parse_flow_set(v)) flows.push_back(std::move(fa));
    });
    flags.toggle("--trace-digest", &trace_digest);
    flags.toggle("--check", &check);
    flags.toggle("--fast-forward", &fast_forward);
    flags.parse(argc, argv);
    if (metrics_interval_ms <= 0) {
      die("--metrics-interval wants a positive cadence in ms");
    }
    obs::FlightTrigger flight_trigger = obs::FlightTrigger::kStarvation;
    if (!obs::parse_flight_trigger(flight_trigger_spec, &flight_trigger)) {
      die("--flight-trigger wants starvation, always or never (got '" +
          flight_trigger_spec + "')");
    }
    if (flight_window_s <= 0) {
      die("--flight-window wants a positive half-width in seconds");
    }
    if (flows.empty()) flows.push_back(sweep::parse_flow("copa"));

    ScenarioConfig cfg;
    cfg.link_rate = Rate::mbps(link_mbps);
    cfg.buffer_bytes =
        sweep::parse_buffer_bytes(buffer_spec, cfg.link_rate, rtt_ms);
    if (ecn_threshold_pkts > 0) {
      cfg.aqm = std::make_unique<ThresholdEcn>(
          static_cast<uint64_t>(ecn_threshold_pkts) * kMss);
    }
    cfg.prefill_bytes = prefill_bytes;
    if (jitter_budget_ms > 0) {
      cfg.jitter_budget = TimeNs::millis(jitter_budget_ms);
    }
    auto sc = std::make_unique<Scenario>(std::move(cfg));

    // base = seed * 1000 matches sweep::run_point and the golden/fuzz
    // builders, so --seed=N reproduces exactly what they ran.
    const uint64_t base = seed * 1000;
    for (size_t i = 0; i < flows.size(); ++i) {
      const sweep::FlowArgs& fa = flows[i];
      FlowSpec spec;
      spec.cca = sweep::make_cca(fa.cca, base + 7 + i);
      spec.min_rtt = TimeNs::millis(fa.rtt_ms.value_or(rtt_ms));
      spec.start_at = TimeNs::seconds(fa.start_s);
      spec.loss_rate = fa.loss;
      spec.loss_seed = base + 77 + i;
      if (auto j = sweep::make_jitter(fa.ack_jitter, base + 100 + i)) {
        spec.ack_jitter = std::move(j);
      }
      if (auto j = sweep::make_jitter(fa.data_jitter, base + 200 + i)) {
        spec.data_jitter = std::move(j);
      }
      spec.recv = sweep::make_recv_config(fa);
      spec.stats_interval = TimeNs::millis(10);
      sc->add_flow(std::move(spec));
    }

    TraceRecorder recorder;
    if (trace_digest) sc->sim().set_tracer(&recorder);
    check::InvariantChecker checker;
    if (check) checker.attach(*sc);

    std::unique_ptr<obs::FlightRecorder> flight;
    if (!flight_path.empty()) {
      obs::FlightConfig fc;
      fc.trigger = flight_trigger;
      fc.window = TimeNs::seconds(flight_window_s);
      for (const auto& fa : flows) fc.flow_labels.push_back(fa.cca);
      flight = std::make_unique<obs::FlightRecorder>(std::move(fc));
    }

    std::ofstream metrics_file;
    std::unique_ptr<obs::FlowTelemetry> telemetry;
    // The flight recorder's starvation trigger and verdict come from the
    // telemetry-side detector, so --flight implies a (possibly stream-less)
    // telemetry probe.
    if (!metrics_path.empty() || flight) {
      obs::TelemetryConfig tc;
      tc.interval = TimeNs::millis(metrics_interval_ms);
      if (metrics_path == "-") {
        tc.jsonl = &std::cout;
      } else if (!metrics_path.empty()) {
        metrics_file.open(metrics_path, std::ios::trunc);
        if (!metrics_file) {
          die("cannot open '" + metrics_path + "' for writing");
        }
        tc.jsonl = &metrics_file;
      }
      for (const auto& fa : flows) tc.flow_labels.push_back(fa.cca);
      tc.flight = flight.get();
      telemetry = std::make_unique<obs::FlowTelemetry>(std::move(tc));
      telemetry->attach(*sc);
    }
    if (flight) flight->attach(*sc);

    warp::WarpStats warp_stats;
    if (fast_forward) {
      warp::WarpRunner runner(std::move(sc), warp::WarpConfig{});
      runner.on_fork = [&](Scenario& fsc, TimeNs from, TimeNs to,
                           const std::vector<uint64_t>& credits) {
        if (telemetry) telemetry->note_warp(fsc, from, to, credits);
        if (flight) flight->note_warp(fsc, from, to);
        if (check) checker.attach(fsc);
      };
      runner.run_until(TimeNs::seconds(duration_s));
      warp_stats = runner.stats();
      sc = runner.take_scenario();
    } else {
      sc->run_until(TimeNs::seconds(duration_s));
    }
    if (telemetry) telemetry->finish(TimeNs::seconds(duration_s));
    if (check) checker.checkpoint();

    Table t({"flow", "cca", "throughput Mbit/s", "mean RTT ms", "retx",
             "timeouts"});
    for (size_t i = 0; i < flows.size(); ++i) {
      const auto& stats = sc->stats(i);
      const double rtt_mean =
          stats.rtt_seconds.empty()
              ? 0.0
              : stats.rtt_seconds.mean_over(TimeNs::zero(),
                                            TimeNs::seconds(duration_s)) *
                    1e3;
      t.add_row({std::to_string(i), flows[i].cca,
                 Table::num(sc->throughput(i).to_mbps(), 2),
                 Table::num(rtt_mean, 1),
                 std::to_string(stats.fast_retransmits),
                 std::to_string(stats.timeouts)});
      if (!csv_prefix.empty()) dump_csv(csv_prefix, i, stats);
    }
    t.print(std::cout);
    if (fast_forward) {
      std::printf(
          "warp: %llu warps (%.1f s skipped), %llu attempts, refusals: "
          "structural=%llu no-model=%llu jitter=%llu window=%llu "
          "disagree=%llu snapshot=%llu\n",
          static_cast<unsigned long long>(warp_stats.warps),
          warp_stats.warped_seconds,
          static_cast<unsigned long long>(warp_stats.attempts),
          static_cast<unsigned long long>(warp_stats.refused_structural),
          static_cast<unsigned long long>(warp_stats.refused_no_model),
          static_cast<unsigned long long>(warp_stats.refused_jitter),
          static_cast<unsigned long long>(warp_stats.refused_window),
          static_cast<unsigned long long>(warp_stats.refused_disagree),
          static_cast<unsigned long long>(warp_stats.refused_snapshot));
    }
    if (sc->has_bottleneck() && sc->link().ce_marks() > 0) {
      std::printf("CE marks: %llu\n",
                  static_cast<unsigned long long>(sc->link().ce_marks()));
    }
    if (!csv_prefix.empty()) {
      std::printf("CSV series written to %s.flowN.{rtt,delivered}.csv\n",
                  csv_prefix.c_str());
    }
    if (telemetry && !metrics_path.empty() && metrics_path != "-") {
      std::printf("telemetry JSONL written to %s (%llu buckets)\n",
                  metrics_path.c_str(),
                  static_cast<unsigned long long>(
                      telemetry->buckets_closed()));
    }
    if (flight) {
      if (flight->should_export()) {
        std::ofstream fo(flight_path, std::ios::trunc);
        if (!fo) die("cannot open '" + flight_path + "' for writing");
        obs::write_chrome_trace(fo, *flight);
        TimeNs lo = TimeNs::zero(), hi = TimeNs::zero();
        flight->export_window(&lo, &hi);
        std::printf(
            "flight trace written to %s (trigger=%s, window %.3f-%.3f s, "
            "%llu events recorded)\n",
            flight_path.c_str(), obs::to_string(flight->config().trigger),
            lo.to_seconds(), hi.to_seconds(),
            static_cast<unsigned long long>(flight->recorded()));
      } else {
        std::printf(
            "flight: nothing exported (trigger=%s%s)\n",
            obs::to_string(flight->config().trigger),
            flight->config().trigger == obs::FlightTrigger::kStarvation
                ? ", no starvation crossing"
                : "");
      }
    }
    if (trace_digest) {
      std::printf("trace-digest: fnv1a64=%s records=%llu\n",
                  recorder.digest_hex().c_str(),
                  static_cast<unsigned long long>(recorder.records()));
    }
    if (check) {
      if (!checker.ok()) {
        std::fprintf(stderr, "invariant check FAILED:\n%s",
                     checker.report().c_str());
        return 1;
      }
      std::printf("invariants: ok\n");
    }
    return 0;
  } catch (const sweep::SpecError& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(e.what());
  }
}
