// ccstarve_run — command-line scenario runner.
//
// Assembles a multi-flow scenario from flags, runs it, prints a per-flow
// summary and (optionally) dumps per-flow RTT/throughput time series as CSV
// for plotting.
//
//   ccstarve_run --link=120 --rtt=60 --duration=60 \
//                --flow=copa --flow=copa:ackjitter=quantize:60 \
//                --csv=/tmp/out
//
// Flags:
//   --link=<Mbit/s>          bottleneck rate            (default 60)
//   --rtt=<ms>               propagation RTT            (default 60)
//   --duration=<s>           simulated seconds          (default 60)
//   --buffer=<pkts|Xbdp>     drop-tail buffer           (default: unbounded)
//   --ecn=<threshold pkts>   threshold ECN marking      (default: off)
//   --csv=<prefix>           write <prefix>.flowN.{rtt,rate}.csv
//   --flow=<cca>[:opt=val]*  add a flow; repeatable. Options:
//       start=<s>        start time
//       rtt=<ms>         per-flow propagation RTT
//       loss=<frac>      random loss on the data path
//       ackjitter=<spec> jitter on the ACK path
//       datajitter=<spec> jitter on the data path
//     jitter specs: const:<ms> | uniform:<ms> | quantize:<ms> |
//                   onoff:<ms>,<on ms>,<off ms> | step:<ms>,<start s> |
//                   allbutone:<ms>,<exempt s>
//   CCAs: vegas fast copa copa-default bbr vivace allegro newreno cubic
//         ledbat verus delay-aimd jitter-aware ecn-reno const-cwnd
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/allegro.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/ecn_reno.hpp"
#include "cc/fast.hpp"
#include "cc/jitter_aware.hpp"
#include "cc/ledbat.hpp"
#include "cc/misc.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/verus.hpp"
#include "cc/vivace.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_run: %s\n", msg.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

std::unique_ptr<Cca> make_cca(const std::string& name, uint64_t seed) {
  if (name == "vegas") return std::make_unique<Vegas>();
  if (name == "fast") return std::make_unique<FastTcp>();
  if (name == "copa") return std::make_unique<Copa>();
  if (name == "copa-default") {
    Copa::Params p;
    p.enable_mode_switching = false;
    p.min_rtt_window = TimeNs::seconds(600);
    return std::make_unique<Copa>(p);
  }
  if (name == "bbr") {
    Bbr::Params p;
    p.seed = seed;
    return std::make_unique<Bbr>(p);
  }
  if (name == "vivace") {
    Vivace::Params p;
    p.seed = seed;
    return std::make_unique<Vivace>(p);
  }
  if (name == "allegro") {
    Allegro::Params p;
    p.seed = seed;
    return std::make_unique<Allegro>(p);
  }
  if (name == "newreno") return std::make_unique<NewReno>();
  if (name == "cubic") return std::make_unique<Cubic>();
  if (name == "ledbat") return std::make_unique<Ledbat>();
  if (name == "delay-aimd") return std::make_unique<DelayAimd>();
  if (name == "jitter-aware") return std::make_unique<JitterAware>();
  if (name == "ecn-reno") return std::make_unique<EcnReno>();
  if (name == "verus") return std::make_unique<Verus>();
  if (name == "const-cwnd") return std::make_unique<ConstCwnd>(50);
  die("unknown cca '" + name + "'");
}

std::unique_ptr<JitterPolicy> make_jitter(const std::string& spec,
                                          uint64_t seed) {
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  const auto args = parts.size() > 1 ? split(parts[1], ',') :
                                       std::vector<std::string>{};
  auto ms = [&](size_t i) {
    if (i >= args.size()) die("jitter spec '" + spec + "' missing argument");
    return TimeNs::millis(std::stod(args[i]));
  };
  if (kind == "const") return std::make_unique<ConstantJitter>(ms(0));
  if (kind == "uniform") {
    return std::make_unique<UniformJitter>(TimeNs::zero(), ms(0), seed);
  }
  if (kind == "quantize") return std::make_unique<PeriodicReleaseJitter>(ms(0));
  if (kind == "onoff") return std::make_unique<OnOffJitter>(ms(0), ms(1), ms(2));
  if (kind == "step") {
    return std::make_unique<StepJitter>(
        ms(0), TimeNs::seconds(std::stod(args.at(1))));
  }
  if (kind == "allbutone") {
    return std::make_unique<AllButOneJitter>(
        ms(0), TimeNs::seconds(std::stod(args.at(1))));
  }
  die("unknown jitter spec '" + spec + "'");
}

struct FlowArgs {
  std::string cca;
  double start_s = 0.0;
  std::optional<double> rtt_ms;
  double loss = 0.0;
  std::string ack_jitter, data_jitter;
};

FlowArgs parse_flow(const std::string& value) {
  FlowArgs out;
  const auto parts = split(value, ':');
  out.cca = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    const size_t eq = parts[i].find('=');
    if (eq == std::string::npos) die("bad flow option '" + parts[i] + "'");
    const std::string key = parts[i].substr(0, eq);
    const std::string val = parts[i].substr(eq + 1);
    if (key == "start") {
      out.start_s = std::stod(val);
    } else if (key == "rtt") {
      out.rtt_ms = std::stod(val);
    } else if (key == "loss") {
      out.loss = std::stod(val);
    } else if (key == "ackjitter") {
      out.ack_jitter = val;
      // jitter args may themselves contain ':' (e.g. quantize:60): re-join.
      for (size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[j].find('=') != std::string::npos) break;
        out.ack_jitter += ":" + parts[j];
        ++i;
      }
    } else if (key == "datajitter") {
      out.data_jitter = val;
      for (size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[j].find('=') != std::string::npos) break;
        out.data_jitter += ":" + parts[j];
        ++i;
      }
    } else {
      die("unknown flow option '" + key + "'");
    }
  }
  return out;
}

void dump_csv(const std::string& prefix, size_t i, const FlowStats& stats) {
  {
    std::ofstream os(prefix + ".flow" + std::to_string(i) + ".rtt.csv");
    stats.rtt_seconds.write_csv(os, "rtt_s");
  }
  {
    std::ofstream os(prefix + ".flow" + std::to_string(i) + ".delivered.csv");
    stats.delivered_bytes.write_csv(os, "delivered_bytes");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double link_mbps = 60, rtt_ms = 60, duration_s = 60;
  std::string buffer_spec, csv_prefix;
  double ecn_threshold_pkts = 0;
  std::vector<FlowArgs> flows;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) {
      const size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? std::optional(arg.substr(n))
                                          : std::nullopt;
    };
    if (auto v = val("--link=")) {
      link_mbps = std::stod(*v);
    } else if (auto v = val("--rtt=")) {
      rtt_ms = std::stod(*v);
    } else if (auto v = val("--duration=")) {
      duration_s = std::stod(*v);
    } else if (auto v = val("--buffer=")) {
      buffer_spec = *v;
    } else if (auto v = val("--ecn=")) {
      ecn_threshold_pkts = std::stod(*v);
    } else if (auto v = val("--csv=")) {
      csv_prefix = *v;
    } else if (auto v = val("--flow=")) {
      flows.push_back(parse_flow(*v));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of tools/ccstarve_run.cpp\n");
      return 0;
    } else {
      die("unknown flag '" + arg + "' (try --help)");
    }
  }
  if (flows.empty()) flows.push_back(parse_flow("copa"));

  ScenarioConfig cfg;
  cfg.link_rate = Rate::mbps(link_mbps);
  if (!buffer_spec.empty()) {
    if (buffer_spec.size() > 3 &&
        buffer_spec.substr(buffer_spec.size() - 3) == "bdp") {
      const double x = std::stod(buffer_spec);
      cfg.buffer_bytes = static_cast<uint64_t>(
          x * cfg.link_rate.bytes_per_second() * rtt_ms / 1e3);
    } else {
      cfg.buffer_bytes = static_cast<uint64_t>(std::stod(buffer_spec)) * kMss;
    }
  }
  if (ecn_threshold_pkts > 0) {
    cfg.aqm = std::make_unique<ThresholdEcn>(
        static_cast<uint64_t>(ecn_threshold_pkts) * kMss);
  }
  Scenario sc(std::move(cfg));

  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowArgs& fa = flows[i];
    FlowSpec spec;
    spec.cca = make_cca(fa.cca, 7 + i);
    spec.min_rtt = TimeNs::millis(fa.rtt_ms.value_or(rtt_ms));
    spec.start_at = TimeNs::seconds(fa.start_s);
    spec.loss_rate = fa.loss;
    spec.loss_seed = 77 + i;
    if (!fa.ack_jitter.empty()) {
      spec.ack_jitter = make_jitter(fa.ack_jitter, 100 + i);
    }
    if (!fa.data_jitter.empty()) {
      spec.data_jitter = make_jitter(fa.data_jitter, 200 + i);
    }
    spec.stats_interval = TimeNs::millis(10);
    sc.add_flow(std::move(spec));
  }

  sc.run_until(TimeNs::seconds(duration_s));

  Table t({"flow", "cca", "throughput Mbit/s", "mean RTT ms", "retx",
           "timeouts"});
  for (size_t i = 0; i < flows.size(); ++i) {
    const auto& stats = sc.stats(i);
    const double rtt_mean =
        stats.rtt_seconds.empty()
            ? 0.0
            : stats.rtt_seconds.mean_over(TimeNs::zero(),
                                          TimeNs::seconds(duration_s)) *
                  1e3;
    t.add_row({std::to_string(i), flows[i].cca,
               Table::num(sc.throughput(i).to_mbps(), 2),
               Table::num(rtt_mean, 1),
               std::to_string(stats.fast_retransmits),
               std::to_string(stats.timeouts)});
    if (!csv_prefix.empty()) dump_csv(csv_prefix, i, stats);
  }
  t.print(std::cout);
  if (sc.has_bottleneck() && sc.link().ce_marks() > 0) {
    std::printf("CE marks: %llu\n",
                static_cast<unsigned long long>(sc.link().ce_marks()));
  }
  if (!csv_prefix.empty()) {
    std::printf("CSV series written to %s.flowN.{rtt,delivered}.csv\n",
                csv_prefix.c_str());
  }
  return 0;
}
