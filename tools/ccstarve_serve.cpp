// ccstarve_serve — long-running experiment daemon with live telemetry.
//
// Accepts scenario/sweep jobs over newline-delimited JSON on TCP, runs
// them on the sweep engine's worker pool, and streams flow-telemetry
// buckets and sweep records to any number of concurrent subscribers. A
// stalled subscriber never blocks a simulation: each subscriber owns a
// bounded queue with a drop/coalesce policy for bulk lines (see
// src/serve/hub.hpp), while a subscriber that keeps up receives a stream
// byte-identical to the offline tools' output.
//
//   ccstarve_serve --port=7787 &
//   ccstarve_client --port=7787 run --flows=copa+copa --duration=30
//
// Flags:
//   --host=<addr>        IPv4 listen address        (default 127.0.0.1)
//   --port=<n>           TCP port; 0 = ephemeral    (default 7787)
//   --executors=<n>      concurrent jobs            (default 1; each sweep
//                        job parallelizes internally via its own jobs=)
//   --cache=<dir>        sweep result cache         (default .sweep-cache)
//   --no-cache           disable the sweep result cache
//   --queue-cap=<n>      per-subscriber line queue  (default 8192)
//   --backlog=<n>        per-job replay backlog     (default 65536)
//
// SIGINT/SIGTERM initiate a graceful stop: in-flight jobs are cancelled
// (run jobs still flush telemetry summaries for the time reached, sweep
// jobs finish their in-flight points and keep their cache entries),
// subscribers get their stream_end lines, and every connection is closed
// before exit. The protocol is documented in src/serve/server.hpp.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/server.hpp"
#include "util/cli.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_serve: %s\n", msg.c_str());
  std::exit(2);
}

serve::Server* g_server = nullptr;

// Single atomic store; async-signal-safe. Server::wait polls it.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions opt;
  opt.port = 7787;
  opt.cache_dir = ".sweep-cache";
  bool no_cache = false;
  unsigned port = opt.port, executors = opt.executors;
  uint64_t queue_cap = opt.queue_capacity, backlog = opt.backlog_lines;

  try {
    cli::Flags flags("ccstarve_serve");
    flags.value("--host", &opt.host);
    flags.value("--port", &port);
    flags.value("--executors", &executors);
    flags.value("--cache", &opt.cache_dir);
    flags.toggle("--no-cache", &no_cache);
    flags.value("--queue-cap", &queue_cap);
    flags.value("--backlog", &backlog);
    flags.parse(argc, argv);

    if (port > 65535) die("--port wants a value in [0, 65535]");
    if (executors == 0) die("--executors wants at least 1");
    if (queue_cap == 0 || backlog == 0) {
      die("--queue-cap and --backlog want positive sizes");
    }
    opt.port = static_cast<uint16_t>(port);
    opt.executors = executors;
    if (no_cache) opt.cache_dir.clear();
    opt.queue_capacity = static_cast<size_t>(queue_cap);
    opt.backlog_lines = static_cast<size_t>(backlog);

    const std::string host = opt.host;
    serve::Server server(std::move(opt));
    std::string error;
    if (!server.start(&error)) die(error);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // Port on stdout, flushed immediately: scripts (and the CI smoke job)
    // start with --port=0 and read the ephemeral port from here.
    std::printf("ccstarve_serve: listening on %s:%u\n", host.c_str(),
                server.port());
    std::fflush(stdout);

    server.wait();
    std::fprintf(stderr, "ccstarve_serve: stopping\n");
    server.stop();
    g_server = nullptr;
    return 0;
  } catch (const cli::UsageError& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(e.what());
  }
}
