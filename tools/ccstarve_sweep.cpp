// ccstarve_sweep — parallel experiment-sweep runner.
//
// Expands a cartesian product of scenario axes into a grid of independent
// runs, executes them across worker threads, and emits one JSONL record
// per point plus a summary table. Completed points are cached on disk, so
// re-running a sweep (or resuming an interrupted one) skips finished work.
//
//   ccstarve_sweep --flows=copa+copa --flows=bbr+bbr
//                  --link=log:1:100:9 --rtt=20,60,100
//                  --jitter=none --jitter=quantize:60
//                  --jobs=8 --out=sweep.jsonl
//
// Axes (each flag value multiplies the grid):
//   --flows=<set>        flow set, '+'-joined ccstarve_run flow specs;
//                        repeatable (one grid axis value per flag)
//   --link=<list>        bottleneck Mbit/s: "a,b,c" or lin:<lo>:<hi>:<n>
//                        or log:<lo>:<hi>:<n>          (default 60)
//   --rtt=<list>         propagation RTT ms, same forms (default 60)
//   --duration=<list>    simulated seconds             (default 60)
//   --buffer=<list>      comma list of "-" | <pkts> | <x>bdp (default -)
//   --jitter=<spec>      data-path jitter on flow 0; repeatable
//                        (default none; per-flow datajitter= overrides)
//   --seed=<list>        integer seeds                 (default 1)
// Execution:
//   --jobs=<N>           worker threads (default: hardware threads)
//   --share-prefix       share warm-up prefixes between points differing
//                        only in a late-activating jitter axis (one stem
//                        run per group, snapshot/forked per member;
//                        records are byte-identical to cold runs)
//   --fast-forward       run points through the hybrid packet/fluid warp
//                        engine (sim/warp): certified-converged stretches
//                        are skipped analytically, so hour-scale points
//                        finish 10-100x faster. Starvation verdicts match
//                        pure runs within the warp error budget; records
//                        gain an "|ff=1" cache-key suffix so hybrid and
//                        pure sweeps never share cache entries. Disables
//                        --share-prefix (the warp already skips the stem).
//   --warmup-frac=<f>    measurement window starts at f*duration (def 1/6)
//   --out=<path>         write JSONL records there ("-" = stdout)
//   --cache=<dir>        result cache directory (default .sweep-cache)
//   --no-cache           disable the result cache
//   --quiet              suppress per-point progress on stderr
// Telemetry:
//   --profile[=<path>]   self-profile the sweep: per-point wall/CPU cost and
//                        per-worker busy/idle summary on stderr; with a
//                        path, also stream per-point JSONL there. Profiling
//                        never touches the canonical result records.
//   --starvation-window=<ms>
//                        attach a flow-telemetry probe to every simulated
//                        point and export first_crossing_s (first time the
//                        sliding-window throughput ratio crossed the
//                        threshold). Changes record content, so the window/
//                        threshold join the cache key, and --share-prefix
//                        is disabled for the run (crossing times depend on
//                        probe attach time, so they are not fork-invariant).
//   --starvation-threshold=<x>
//                        ratio counting as starvation (default 2)
//   --flight-worst=<path>
//                        after the sweep completes, deterministically re-run
//                        the worst point (highest max/min starvation ratio)
//                        with the flight recorder attached and write its
//                        Chrome trace-event JSON there (Perfetto-loadable;
//                        feed to `ccstarve_report forensics`). The re-run is
//                        observation-only, so the sweep's canonical records
//                        are untouched.
//
// SIGINT finishes in-flight points, flushes completed records to --out,
// and exits 130; a later identical invocation resumes from the cache.
// The handler stays installed until outputs are flushed, and file outputs
// are written atomically (tmp + rename), so a second ^C during the flush
// can never leave a truncated --out or --profile file.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/flight_export.hpp"
#include "obs/telemetry.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec_parse.hpp"
#include "util/cli.hpp"
#include "util/files.hpp"
#include "util/parallel.hpp"

using namespace ccstarve;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ccstarve_sweep: %s\n", msg.c_str());
  std::exit(2);
}

std::vector<uint64_t> parse_seeds(const std::string& spec) {
  std::vector<uint64_t> out;
  for (double v : sweep::parse_axis_values(spec)) {
    if (v < 0) die("negative seed in '" + spec + "'");
    out.push_back(static_cast<uint64_t>(v));
  }
  return out;
}

void on_sigint(int) { sweep::request_stop(); }

}  // namespace

int main(int argc, char** argv) {
  sweep::SweepGrid grid;
  sweep::SweepOptions opt;
  opt.progress = true;
  opt.cache_dir = ".sweep-cache";
  std::string out_path;
  std::string profile_path;
  std::string flight_worst_path;
  bool no_cache = false;

  // Clear the defaulted axes the first time the corresponding flag appears,
  // so "--link=10 --link=20" and "--link=10,20" mean the same grid.
  bool saw_jitter = false, saw_buffer = false;

  try {
    cli::Flags flags("ccstarve_sweep");
    flags.each("--flows",
               [&](const std::string& v) { grid.flow_sets.push_back(v); });
    flags.each("--link", [&](const std::string& v) {
      grid.link_mbps = sweep::parse_axis_values(v);
    });
    flags.each("--rtt", [&](const std::string& v) {
      grid.rtt_ms = sweep::parse_axis_values(v);
    });
    flags.each("--duration", [&](const std::string& v) {
      grid.duration_s = sweep::parse_axis_values(v);
    });
    flags.each("--buffer", [&](const std::string& v) {
      if (!saw_buffer) grid.buffer.clear();
      saw_buffer = true;
      for (const auto& b : sweep::split(v, ',')) grid.buffer.push_back(b);
    });
    flags.each("--jitter", [&](const std::string& v) {
      if (!saw_jitter) grid.jitter.clear();
      saw_jitter = true;
      grid.jitter.push_back(v);
    });
    flags.each("--seed",
               [&](const std::string& v) { grid.seeds = parse_seeds(v); });
    flags.each("--warmup-frac", [&](const std::string& v) {
      try {
        grid.warmup_fraction = std::stod(v);
      } catch (const std::exception&) {
        die("bad --warmup-frac value '" + v + "'");
      }
      if (grid.warmup_fraction < 0 || grid.warmup_fraction >= 1) {
        die("--warmup-frac wants a fraction in [0, 1)");
      }
    });
    flags.value("--jobs", &opt.jobs);
    flags.value("--out", &out_path);
    flags.value("--cache", &opt.cache_dir);
    flags.toggle("--share-prefix", &opt.share_prefix);
    flags.toggle("--fast-forward", &opt.fast_forward);
    flags.optional_value("--profile", [&](const std::string& v) {
      opt.profile = true;
      profile_path = v;  // empty when used bare
    });
    flags.each("--starvation-window", [&](const std::string& v) {
      try {
        opt.starvation_window_ms = std::stod(v);
      } catch (const std::exception&) {
        die("bad --starvation-window value '" + v + "'");
      }
      if (opt.starvation_window_ms <= 0) {
        die("--starvation-window wants a positive window in ms");
      }
    });
    flags.each("--starvation-threshold", [&](const std::string& v) {
      try {
        opt.starvation_threshold = std::stod(v);
      } catch (const std::exception&) {
        die("bad --starvation-threshold value '" + v + "'");
      }
      if (opt.starvation_threshold < 1) {
        die("--starvation-threshold wants a ratio >= 1");
      }
    });
    flags.value("--flight-worst", &flight_worst_path);
    flags.toggle("--no-cache", &no_cache);
    flags.on("--quiet", [&] { opt.progress = false; });
    flags.parse(argc, argv);
    if (grid.flow_sets.empty()) die("at least one --flows=<set> is required");
    if (no_cache) opt.cache_dir.clear();
    if (opt.share_prefix && opt.starvation_window_ms > 0) {
      std::fprintf(stderr,
                   "ccstarve_sweep: --starvation-window disables "
                   "--share-prefix (crossing times are not fork-invariant)\n");
      opt.share_prefix = false;
    }
    if (opt.share_prefix && opt.fast_forward) {
      std::fprintf(stderr,
                   "ccstarve_sweep: --fast-forward disables --share-prefix "
                   "(the warp engine already skips the shared stem)\n");
      opt.share_prefix = false;
    }

    const std::vector<sweep::SweepPoint> points = grid.expand();
    std::fprintf(stderr, "sweep: %zu points, %u jobs%s\n", points.size(),
                 effective_jobs(opt.jobs, points.size()),
                 opt.cache_dir.empty()
                     ? ""
                     : (", cache " + opt.cache_dir).c_str());

    std::signal(SIGINT, on_sigint);
    std::signal(SIGTERM, on_sigint);
    const sweep::SweepOutcome outcome = sweep::run_sweep(points, opt);
    // The handler stays installed (as a harmless re-request_stop) until the
    // outputs below are flushed: restoring SIG_DFL here would let a second
    // ^C kill the process mid-write. Combined with the atomic tmp+rename
    // writes, an impatient ^C ^C leaves the old --out intact rather than a
    // truncated one.

    if (!out_path.empty()) {
      if (out_path == "-") {
        sweep::write_jsonl(std::cout, outcome);
      } else if (!write_file_atomic(out_path, [&](std::ostream& os) {
                   sweep::write_jsonl(os, outcome);
                 })) {
        die("cannot write '" + out_path + "'");
      }
    }
    sweep::summary_table(outcome.records).print(std::cout);

    if (!flight_worst_path.empty() && !outcome.records.empty()) {
      // Worst point = highest max/min throughput ratio (the paper's
      // starvation ratio; the most-starved grid point).
      const sweep::SweepRecord* worst = &outcome.records.front();
      for (const auto& r : outcome.records) {
        if (r.starvation_ratio > worst->starvation_ratio) worst = &r;
      }
      const sweep::SweepPoint* wpt = nullptr;
      for (const auto& pt : points) {
        if (sweep::effective_key(pt, opt) == worst->key) {
          wpt = &pt;
          break;
        }
      }
      if (wpt == nullptr) {
        std::fprintf(stderr,
                     "ccstarve_sweep: --flight-worst: record key '%s' "
                     "matches no grid point; skipping\n",
                     worst->key.c_str());
      } else {
        // Deterministic re-run of just that point with the recorder
        // attached (probes are read-only, so this reproduces the record's
        // run exactly). trigger=always: the capture must exist even when
        // the worst ratio never crossed the starvation threshold.
        obs::FlightConfig fc;
        fc.trigger = obs::FlightTrigger::kAlways;
        obs::TelemetryConfig tc;
        tc.interval = TimeNs::millis(10);
        if (opt.starvation_window_ms > 0) {
          tc.ratio_window = TimeNs::millis(opt.starvation_window_ms);
        }
        tc.starvation_threshold = opt.starvation_threshold;
        for (const auto& fa : sweep::parse_flow_set(wpt->flow_set)) {
          tc.flow_labels.push_back(fa.cca);
          fc.flow_labels.push_back(fa.cca);
        }
        obs::FlightRecorder flight(std::move(fc));
        tc.flight = &flight;
        obs::FlowTelemetry telemetry(std::move(tc));
        auto sc = sweep::build_point_scenario(*wpt, nullptr);
        telemetry.attach(*sc);
        flight.attach(*sc);
        sc->run_until(TimeNs::seconds(wpt->duration_s));
        telemetry.finish(TimeNs::seconds(wpt->duration_s));
        if (!write_file_atomic(flight_worst_path, [&](std::ostream& os) {
              obs::write_chrome_trace(os, flight);
            })) {
          die("cannot write '" + flight_worst_path + "'");
        }
        std::fprintf(stderr,
                     "sweep: flight capture of worst point (%s, ratio %.3g) "
                     "written to %s\n",
                     worst->key.c_str(), worst->starvation_ratio,
                     flight_worst_path.c_str());
      }
    }
    if (opt.profile) {
      obs::profile_summary_table(outcome.profile).print(std::cerr);
      if (!profile_path.empty() &&
          !write_file_atomic(profile_path, [&](std::ostream& os) {
            obs::write_profile_jsonl(os, outcome.profile);
          })) {
        die("cannot write '" + profile_path + "'");
      }
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    // "done" is the completed-bucket sum (SweepStats::done()), which always
    // equals the number of emitted records; skipped points make up the rest
    // of the grid, so done + skipped = total.
    const sweep::SweepStats& st = outcome.stats;
    std::fprintf(stderr,
                 "sweep: %zu/%zu points done (%zu simulated + %zu cached + "
                 "%zu forked = %zu done, %zu skipped)\n",
                 st.done(), st.total, st.simulated, st.cache_hits, st.forked,
                 st.done(), st.skipped);
    if (opt.fast_forward) {
      std::fprintf(stderr, "sweep: %llu fast-forward warps fired\n",
                   static_cast<unsigned long long>(st.warps));
    }
    return outcome.interrupted ? 130 : 0;
  } catch (const sweep::SpecError& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(e.what());
  }
}
