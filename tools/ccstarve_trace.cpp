// ccstarve_trace — Mahimahi delivery-trace utility.
//
// "Trace" here means a Mahimahi-style delivery-opportunity schedule (one
// packet-delivery timestamp per line) consumed by the trace-driven link
// (src/emu/trace_link). It is unrelated to the two other "traces" in this
// repo: the golden-trace digest of a run's packet events (ccstarve_run
// --trace-digest) and the flight recorder's causal event trace
// (ccstarve_run --flight, a Chrome trace-event JSON for Perfetto /
// ccstarve_report --mode=forensics).
//
//   ccstarve_trace gen constant 12 8 > uplink.trace   # 12 Mbit/s for 8 s
//   ccstarve_trace gen sawtooth 2 16 4 8 > cell.trace # 2..16 Mbit/s,
//                                                     # 4 s period, 8 s long
//   ccstarve_trace gen poisson 8 8 42 > noisy.trace   # mean 8 Mbit/s for
//                                                     # 8 s, seed 42
//   ccstarve_trace info cell.trace                    # span / rate summary
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "emu/trace.hpp"
#include "util/cli.hpp"

using namespace ccstarve;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ccstarve_trace gen constant <mbps> <seconds>\n"
               "  ccstarve_trace gen sawtooth <lo mbps> <hi mbps> <period s> "
               "<seconds>\n"
               "  ccstarve_trace gen poisson <mbps> <seconds> <seed>\n"
               "  ccstarve_trace info <file>\n"
               "\n"
               "Generates/inspects Mahimahi delivery-opportunity traces for\n"
               "the trace-driven link. Not golden trace digests (ccstarve_run\n"
               "--trace-digest) and not flight traces (ccstarve_run --flight,\n"
               "rendered by ccstarve_report --mode=forensics).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  try {
    cli::Flags flags("ccstarve_trace");
    flags.positionals(&args);
    flags.parse(argc, argv);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "ccstarve_trace: %s\n", e.what());
    return usage();
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];

  if (cmd == "info") {
    if (args.size() != 2) return usage();
    try {
      const DeliveryTrace t = DeliveryTrace::load(args[1]);
      std::printf("%s: %zu delivery opportunities, span %s, mean rate %s\n",
                  args[1].c_str(), t.size(), t.span().to_string().c_str(),
                  t.mean_rate().to_string().c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccstarve_trace: %s\n", e.what());
      return 1;
    }
  }

  if (cmd != "gen" || args.size() < 2) return usage();
  const std::string& kind = args[1];
  DeliveryTrace trace;
  if (kind == "constant" && args.size() == 4) {
    trace = DeliveryTrace::constant(Rate::mbps(std::atof(args[2].c_str())),
                                    TimeNs::seconds(std::atof(args[3].c_str())));
  } else if (kind == "sawtooth" && args.size() == 6) {
    trace = DeliveryTrace::sawtooth(
        Rate::mbps(std::atof(args[2].c_str())),
        Rate::mbps(std::atof(args[3].c_str())),
        TimeNs::seconds(std::atof(args[4].c_str())),
        TimeNs::seconds(std::atof(args[5].c_str())));
  } else if (kind == "poisson" && args.size() == 5) {
    trace = DeliveryTrace::poisson(
        Rate::mbps(std::atof(args[2].c_str())),
        TimeNs::seconds(std::atof(args[3].c_str())),
        static_cast<uint64_t>(std::atoll(args[4].c_str())));
  } else {
    return usage();
  }
  trace.write(std::cout);
  return 0;
}
