// ccstarve_trace — Mahimahi trace utility.
//
//   ccstarve_trace gen constant 12 8 > uplink.trace     # 12 Mbit/s, 8 s
//   ccstarve_trace gen sawtooth 2 16 4 8 > cell.trace   # 2..16 Mbit/s, 4 s period, 8 s
//   ccstarve_trace gen poisson 8 8 42 > noisy.trace     # mean 8 Mbit/s, seed 42
//   ccstarve_trace info cell.trace                      # span / rate summary
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "emu/trace.hpp"

using namespace ccstarve;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ccstarve_trace gen constant <mbps> <seconds>\n"
               "  ccstarve_trace gen sawtooth <lo mbps> <hi mbps> <period s> "
               "<seconds>\n"
               "  ccstarve_trace gen poisson <mbps> <seconds> <seed>\n"
               "  ccstarve_trace info <file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "info") {
    if (argc != 3) return usage();
    try {
      const DeliveryTrace t = DeliveryTrace::load(argv[2]);
      std::printf("%s: %zu delivery opportunities, span %s, mean rate %s\n",
                  argv[2], t.size(), t.span().to_string().c_str(),
                  t.mean_rate().to_string().c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccstarve_trace: %s\n", e.what());
      return 1;
    }
  }

  if (cmd != "gen" || argc < 3) return usage();
  const std::string kind = argv[2];
  DeliveryTrace trace;
  if (kind == "constant" && argc == 5) {
    trace = DeliveryTrace::constant(Rate::mbps(std::atof(argv[3])),
                                    TimeNs::seconds(std::atof(argv[4])));
  } else if (kind == "sawtooth" && argc == 7) {
    trace = DeliveryTrace::sawtooth(
        Rate::mbps(std::atof(argv[3])), Rate::mbps(std::atof(argv[4])),
        TimeNs::seconds(std::atof(argv[5])),
        TimeNs::seconds(std::atof(argv[6])));
  } else if (kind == "poisson" && argc == 6) {
    trace = DeliveryTrace::poisson(
        Rate::mbps(std::atof(argv[3])), TimeNs::seconds(std::atof(argv[4])),
        static_cast<uint64_t>(std::atoll(argv[5])));
  } else {
    return usage();
  }
  trace.write(std::cout);
  return 0;
}
